package vm

import (
	"fmt"
	"math"

	"streamit/internal/wfunc"
)

// Compile lowers an IL function to bytecode. It preserves the
// interpreter's observable semantics exactly: left-to-right evaluation,
// value-before-index assignment order, short-circuit && / || (lowered to
// jumps), per-iteration re-evaluation of loop bounds and steps, and
// identical float64 arithmetic. An error means the function uses a
// construct the compiler does not cover; callers fall back to the
// interpreter.
func Compile(f *wfunc.Func) (*Program, error) {
	c := &compiler{
		p: &Program{
			name:       f.Name,
			numLocals:  f.NumLocals,
			arraySizes: append([]int(nil), f.ArraySizes...),
		},
		constIdx: map[float64]int{},
	}
	c.block(f.Body)
	if c.err != nil {
		return nil, fmt.Errorf("vm: compile %s: %w", f.Name, c.err)
	}
	return c.p, nil
}

// unaryOps maps IL unary operators to dedicated opcodes; unmapped
// operators compile to opUnaryEv and share wfunc.EvalUnary with the
// interpreter.
var unaryOps = map[wfunc.UnOp]Op{
	wfunc.Neg:   opNeg,
	wfunc.Not:   opNot,
	wfunc.Trunc: opTrunc,
	wfunc.Abs:   opAbs,
}

// binaryOps maps IL binary operators to dedicated opcodes. && and || are
// absent deliberately: their short-circuit evaluation is lowered to jumps.
var binaryOps = map[wfunc.BinOp]Op{
	wfunc.Add: opAdd,
	wfunc.Sub: opSub,
	wfunc.Mul: opMul,
	wfunc.Div: opDiv,
	wfunc.Eq:  opEq,
	wfunc.Ne:  opNe,
	wfunc.Lt:  opLt,
	wfunc.Le:  opLe,
	wfunc.Gt:  opGt,
	wfunc.Ge:  opGe,
}

type compiler struct {
	p        *Program
	constIdx map[float64]int
	cur, max int // operand-stack depth tracking for frame preallocation
	loops    []loopCtx
	err      error
}

// loopCtx collects the forward jumps of break/continue statements in the
// innermost loop for later patching.
type loopCtx struct {
	breaks    []int
	continues []int
}

func (c *compiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

// emit appends an instruction and returns its index (for jump patching).
func (c *compiler) emit(op Op, a int) int {
	c.p.code = append(c.p.code, instr{op: op, a: int32(a)})
	return len(c.p.code) - 1
}

// emit2 appends a two-operand (fused) instruction.
func (c *compiler) emit2(op Op, a, b int) int {
	c.p.code = append(c.p.code, instr{op: op, a: int32(a), b: int32(b)})
	return len(c.p.code) - 1
}

func (c *compiler) patch(at int) { c.p.code[at].a = int32(len(c.p.code)) }

func (c *compiler) push(n int) {
	c.cur += n
	if c.cur > c.max {
		c.max = c.cur
	}
	if c.max > c.p.maxStack {
		c.p.maxStack = c.max
	}
}

func (c *compiler) pop(n int) { c.cur -= n }

// cpool interns a constant. NaN needs special casing because it is not
// equal to itself as a map key.
func (c *compiler) cpool(v float64) int {
	if math.IsNaN(v) {
		for i, k := range c.p.consts {
			if math.IsNaN(k) {
				return i
			}
		}
		c.p.consts = append(c.p.consts, v)
		return len(c.p.consts) - 1
	}
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := len(c.p.consts)
	c.p.consts = append(c.p.consts, v)
	c.constIdx[v] = i
	return i
}

// fits16 reports whether i can be packed into half of a fused
// instruction's second operand.
func fits16(i int) bool { return i >= 0 && i < 1<<16 }

func (c *compiler) block(body []wfunc.Stmt) {
	for _, s := range body {
		c.stmt(s)
		if c.err != nil {
			return
		}
	}
}

func (c *compiler) stmt(s wfunc.Stmt) {
	switch s := s.(type) {
	case *wfunc.Assign:
		// v = v + E compiles to E followed by a fused increment. Reading v
		// after E instead of before is equivalent: expressions cannot
		// assign, so E never changes v, and the addends reach the add in
		// the same left/right positions.
		if s.LHS.Kind == wfunc.LVLocal {
			if b, ok := s.X.(*wfunc.Binary); ok && b.Op == wfunc.Add {
				if l, ok := b.A.(*wfunc.LocalRef); ok && l.Idx == s.LHS.Idx {
					c.expr(b.B)
					c.emit(opIncLocal, s.LHS.Idx)
					c.pop(1)
					return
				}
			}
		}
		// The interpreter evaluates the value first, then the index of an
		// array target; keep that order for tape side effects.
		c.expr(s.X)
		switch s.LHS.Kind {
		case wfunc.LVLocal:
			c.emit(opStoreLocal, s.LHS.Idx)
			c.pop(1)
		case wfunc.LVField:
			c.emit(opStoreField, s.LHS.Idx)
			c.pop(1)
		case wfunc.LVLocalArr:
			c.expr(s.LHS.Index)
			c.emit(opStoreLocalIdx, s.LHS.Idx)
			c.pop(2)
		case wfunc.LVFieldArr:
			c.expr(s.LHS.Index)
			c.emit(opStoreFieldIdx, s.LHS.Idx)
			c.pop(2)
		default:
			c.fail("unknown lvalue kind %d", s.LHS.Kind)
		}
	case *wfunc.PushStmt:
		c.expr(s.X)
		c.emit(opPushV, 0)
		c.pop(1)
	case *wfunc.PopStmt:
		c.emit(opPopN, 0)
	case *wfunc.If:
		c.expr(s.C)
		jz := c.emit(opJumpIfZero, 0)
		c.pop(1)
		c.block(s.Then)
		if len(s.Else) == 0 {
			c.patch(jz)
			return
		}
		jend := c.emit(opJump, 0)
		c.patch(jz)
		c.block(s.Else)
		c.patch(jend)
	case *wfunc.For:
		// for locals[Var] = From; locals[Var] < To; locals[Var] += Step.
		// To and Step are re-evaluated every iteration, like the
		// interpreter. Loading Var before To is safe: expressions cannot
		// assign, so To's evaluation never changes the loop variable.
		c.expr(s.From)
		c.emit(opStoreLocal, s.Var)
		c.pop(1)
		top := len(c.p.code)
		jz := -1
		// Constant bounds (the common counted loop after folding) fuse the
		// load/compare/branch head into one instruction.
		if to, ok := s.To.(*wfunc.Const); ok && fits16(s.Var) {
			if ci := c.cpool(to.V); fits16(ci) {
				jz = c.emit2(opJGeLC, 0, s.Var|ci<<16)
			}
		}
		if jz < 0 {
			c.emit(opLoadLocal, s.Var)
			c.push(1)
			c.expr(s.To)
			c.emit(opLt, 0)
			c.pop(1)
			jz = c.emit(opJumpIfZero, 0)
			c.pop(1)
		}
		c.loops = append(c.loops, loopCtx{})
		c.block(s.Body)
		lc := c.loops[len(c.loops)-1]
		c.loops = c.loops[:len(c.loops)-1]
		for _, at := range lc.continues {
			c.patch(at)
		}
		switch step := s.Step.(type) {
		case nil:
			c.emit2(opIncLocalC, s.Var, c.cpool(1))
		case *wfunc.Const:
			c.emit2(opIncLocalC, s.Var, c.cpool(step.V))
		default:
			c.expr(s.Step)
			c.emit(opIncLocal, s.Var)
			c.pop(1)
		}
		c.emit(opJump, top)
		c.patch(jz)
		for _, at := range lc.breaks {
			c.patch(at)
		}
	case *wfunc.While:
		top := len(c.p.code)
		c.expr(s.C)
		jz := c.emit(opJumpIfZero, 0)
		c.pop(1)
		c.loops = append(c.loops, loopCtx{})
		c.block(s.Body)
		lc := c.loops[len(c.loops)-1]
		c.loops = c.loops[:len(c.loops)-1]
		// continue in a while loop re-tests the condition.
		for _, at := range lc.continues {
			c.p.code[at].a = int32(top)
		}
		c.emit(opJump, top)
		c.patch(jz)
		for _, at := range lc.breaks {
			c.patch(at)
		}
	case *wfunc.Break:
		if len(c.loops) == 0 {
			c.fail("break outside loop")
			return
		}
		at := c.emit(opJump, 0)
		lc := &c.loops[len(c.loops)-1]
		lc.breaks = append(lc.breaks, at)
	case *wfunc.Continue:
		if len(c.loops) == 0 {
			c.fail("continue outside loop")
			return
		}
		at := c.emit(opJump, 0)
		lc := &c.loops[len(c.loops)-1]
		lc.continues = append(lc.continues, at)
	case *wfunc.Print:
		c.expr(s.X)
		c.emit(opPrint, 0)
		c.pop(1)
	case *wfunc.Send:
		for _, a := range s.Args {
			c.expr(a)
		}
		c.p.sends = append(c.p.sends, sendSite{
			portal:     s.Portal,
			handler:    s.Handler,
			nargs:      len(s.Args),
			minLat:     s.MinLatency,
			maxLat:     s.MaxLatency,
			bestEffort: s.BestEffort,
		})
		c.emit(opSend, len(c.p.sends)-1)
		c.pop(len(s.Args))
	default:
		c.fail("unknown statement %T", s)
	}
}

func (c *compiler) expr(e wfunc.Expr) {
	switch e := e.(type) {
	case *wfunc.Const:
		c.emit(opConst, c.cpool(e.V))
		c.push(1)
	case *wfunc.LocalRef:
		c.emit(opLoadLocal, e.Idx)
		c.push(1)
	case *wfunc.FieldRef:
		c.emit(opLoadField, e.Idx)
		c.push(1)
	case *wfunc.LocalIndex:
		if l, ok := e.Index.(*wfunc.LocalRef); ok {
			c.emit2(opLoadLocalIdxL, e.Arr, l.Idx)
			c.push(1)
			return
		}
		c.expr(e.Index)
		c.emit(opLoadLocalIdx, e.Arr)
	case *wfunc.FieldIndex:
		if l, ok := e.Index.(*wfunc.LocalRef); ok {
			c.emit2(opLoadFieldIdxL, e.Arr, l.Idx)
			c.push(1)
			return
		}
		c.expr(e.Index)
		c.emit(opLoadFieldIdx, e.Arr)
	case *wfunc.Peek:
		if l, ok := e.Index.(*wfunc.LocalRef); ok {
			c.emit2(opPeekLocal, l.Idx, 0)
			c.push(1)
			return
		}
		c.expr(e.Index)
		c.emit(opPeek, 0)
	case *wfunc.PopExpr:
		c.emit(opPopV, 0)
		c.push(1)
	case *wfunc.Unary:
		c.expr(e.X)
		if op, ok := unaryOps[e.Op]; ok {
			c.emit(op, 0)
		} else {
			c.emit(opUnaryEv, int(e.Op))
		}
	case *wfunc.Binary:
		switch e.Op {
		case wfunc.And:
			// a == 0 ? 0 : bool(b)  — b unevaluated when a is zero.
			c.expr(e.A)
			jz := c.emit(opJumpIfZero, 0)
			c.pop(1)
			c.expr(e.B)
			c.emit(opBool, 0)
			jend := c.emit(opJump, 0)
			c.pop(1)
			c.patch(jz)
			c.emit(opConst, c.cpool(0))
			c.push(1)
			c.patch(jend)
		case wfunc.Or:
			// a != 0 ? 1 : bool(b)  — b unevaluated when a is nonzero.
			c.expr(e.A)
			jz := c.emit(opJumpIfZero, 0)
			c.pop(1)
			c.emit(opConst, c.cpool(1))
			c.push(1)
			jend := c.emit(opJump, 0)
			c.pop(1)
			c.patch(jz)
			c.expr(e.B)
			c.emit(opBool, 0)
			c.patch(jend)
		default:
			c.expr(e.A)
			c.expr(e.B)
			if op, ok := binaryOps[e.Op]; ok {
				c.emit(op, 0)
			} else {
				c.emit(opBinaryEv, int(e.Op))
			}
			c.pop(1)
		}
	case *wfunc.Cond:
		c.expr(e.C)
		jz := c.emit(opJumpIfZero, 0)
		c.pop(1)
		c.expr(e.A)
		jend := c.emit(opJump, 0)
		c.pop(1)
		c.patch(jz)
		c.expr(e.B)
		c.patch(jend)
	default:
		c.fail("unknown expression %T", e)
	}
}
