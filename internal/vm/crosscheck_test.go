package vm_test

// Backend equivalence crosscheck: every application in the benchmark
// suites must produce bit-identical results on the bytecode VM and the
// tree-walking interpreter — channel contents, filter field state, firing
// counts, and println output all compared via float64 bit patterns after
// a multi-iteration run. This is the acceptance gate for the VM backend:
// any divergence, however small, fails loudly with the app and location.

import (
	"fmt"
	"math"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/sched"
)

// backendRun is everything observable about one engine run.
type backendRun struct {
	graph  *ir.Graph
	engine *exec.Engine
	prints []string // "node:bits" in emission order
}

func runOn(t *testing.T, prog *ir.Program, iters int, backend exec.Backend) *backendRun {
	t.Helper()
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	e, err := exec.NewFromGraphBackend(g, s, backend)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	r := &backendRun{graph: g, engine: e}
	e.Printer = func(node string, v float64) {
		r.prints = append(r.prints, fmt.Sprintf("%s:%016x", node, math.Float64bits(v)))
	}
	if err := e.Run(iters); err != nil {
		t.Fatalf("run on %v: %v", backend, err)
	}
	return r
}

// crosscheck runs prog-builder twice (once per backend) and compares every
// observable bit of the final execution state.
func crosscheck(t *testing.T, build func() *ir.Program, iters int) {
	t.Helper()
	vmRun := runOn(t, build(), iters, exec.BackendVM)
	inRun := runOn(t, build(), iters, exec.BackendInterp)

	// The graphs are built identically, so IDs correspond.
	if len(vmRun.graph.Nodes) != len(inRun.graph.Nodes) || len(vmRun.graph.Edges) != len(inRun.graph.Edges) {
		t.Fatalf("graph shapes differ: %d/%d nodes, %d/%d edges",
			len(vmRun.graph.Nodes), len(inRun.graph.Nodes),
			len(vmRun.graph.Edges), len(inRun.graph.Edges))
	}

	// Firing counts and field state per node.
	for i, vn := range vmRun.graph.Nodes {
		in := inRun.graph.Nodes[i]
		if vf, inf := vmRun.engine.FiredCount(vn), inRun.engine.FiredCount(in); vf != inf {
			t.Errorf("node %s: fired %d on vm, %d on interp", vn.Name, vf, inf)
		}
		if vn.Kind != ir.NodeFilter {
			continue
		}
		vs := vmRun.engine.State(vn.Filter)
		is := inRun.engine.State(in.Filter)
		for j := range vs.Scalars {
			if math.Float64bits(vs.Scalars[j]) != math.Float64bits(is.Scalars[j]) {
				t.Errorf("node %s: field %d differs: vm %v interp %v",
					vn.Name, j, vs.Scalars[j], is.Scalars[j])
			}
		}
		for j := range vs.Arrays {
			for k := range vs.Arrays[j] {
				if math.Float64bits(vs.Arrays[j][k]) != math.Float64bits(is.Arrays[j][k]) {
					t.Errorf("node %s: array %d[%d] differs: vm %v interp %v",
						vn.Name, j, k, vs.Arrays[j][k], is.Arrays[j][k])
				}
			}
		}
	}

	// Residual channel contents (peek margins, split/join buffering).
	for i, ve := range vmRun.graph.Edges {
		ie := inRun.graph.Edges[i]
		vItems := vmRun.engine.ChannelItems(ve)
		iItems := inRun.engine.ChannelItems(ie)
		if len(vItems) != len(iItems) {
			t.Errorf("edge %s: %d items on vm, %d on interp", ve, len(vItems), len(iItems))
			continue
		}
		for j := range vItems {
			if math.Float64bits(vItems[j]) != math.Float64bits(iItems[j]) {
				t.Errorf("edge %s item %d differs: vm %v interp %v", ve, j, vItems[j], iItems[j])
			}
		}
	}

	// println output, in order, bit-exact.
	if len(vmRun.prints) != len(inRun.prints) {
		t.Fatalf("print counts differ: %d on vm, %d on interp", len(vmRun.prints), len(inRun.prints))
	}
	for i := range vmRun.prints {
		if vmRun.prints[i] != inRun.prints[i] {
			t.Fatalf("print %d differs: vm %s interp %s", i, vmRun.prints[i], inRun.prints[i])
		}
	}
}

// TestBackendEquivalenceSuite runs the full 12-application parallelization
// suite on both backends.
func TestBackendEquivalenceSuite(t *testing.T) {
	for _, app := range apps.Suite() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			crosscheck(t, app.Build, 20)
		})
	}
}

// TestBackendEquivalenceLinearSuite covers the linear-optimization suite
// (heavy FIR work functions — the VM's hottest path).
func TestBackendEquivalenceLinearSuite(t *testing.T) {
	for _, app := range apps.LinearSuite() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			crosscheck(t, app.Build, 20)
		})
	}
}

// TestBackendEquivalenceFreqHop covers teleport messaging: the frequency-
// hopping radio's detector sends hop messages whose delivery points (and
// the resulting state changes) must coincide exactly across backends.
// Both the teleport and the hand-synchronized variants run long enough to
// trigger multiple hops.
func TestBackendEquivalenceFreqHop(t *testing.T) {
	for _, teleport := range []bool{true, false} {
		teleport := teleport
		t.Run(fmt.Sprintf("teleport=%v", teleport), func(t *testing.T) {
			crosscheck(t, func() *ir.Program { return apps.FreqHoppingRadio(teleport) }, 60)
		})
	}
}
