package fft

import (
	"math/rand"
	"testing"
)

// BenchmarkForward1024 measures the FFT substrate.
func BenchmarkForward1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvolver64x256 measures overlap-save filtering per block.
func BenchmarkConvolver64x256(b *testing.B) {
	h := make([]float64, 64)
	for i := range h {
		h[i] = float64(i % 5)
	}
	cv, err := NewConvolver(h, 256)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]float64, cv.Window())
	out := make([]float64, cv.Block())
	for i := range in {
		in[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cv.Process(in, out); err != nil {
			b.Fatal(err)
		}
	}
}
