// Package fft provides the fast-Fourier-transform substrate used by the
// linear optimizer's frequency translation (and by the FFT/TDE benchmark
// verifiers): an iterative radix-2 decimation-in-time complex FFT plus
// real-input convolution helpers for overlap-save filtering.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Forward computes the in-place radix-2 FFT of x. len(x) must be a power of
// two.
func Forward(x []complex128) error {
	return transform(x, false)
}

// Inverse computes the in-place inverse FFT of x (including the 1/N
// normalization). len(x) must be a power of two.
func Inverse(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation (the paper's bit-reverse-order filter).
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterfly stages.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wn := cmplx.Rect(1, ang)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wn
			}
		}
	}
	return nil
}

// RealForward computes the FFT of a real signal, returning a full complex
// spectrum of the same (power-of-two) length.
func RealForward(x []float64) ([]complex128, error) {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	if err := Forward(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Convolver performs overlap-save FIR filtering: y[n] = sum_k h[k]*x[n+k]
// (the StreamIt peek-convention correlation, matching an N-tap FIR filter
// that peeks x[n..n+N-1]). It processes blocks of B outputs per call using
// an FFT of size B + len(h) - 1 rounded up to a power of two.
type Convolver struct {
	taps  int
	block int
	size  int
	hF    []complex128
	in    []complex128
}

// NewConvolver builds a convolver for impulse response h producing block
// outputs per Process call.
func NewConvolver(h []float64, block int) (*Convolver, error) {
	if len(h) == 0 || block <= 0 {
		return nil, fmt.Errorf("fft: convolver needs taps and a positive block size")
	}
	size := NextPow2(block + len(h) - 1)
	hF := make([]complex128, size)
	for i, v := range h {
		hF[i] = complex(v, 0)
	}
	if err := Forward(hF); err != nil {
		return nil, err
	}
	return &Convolver{taps: len(h), block: block, size: size, hF: hF, in: make([]complex128, size)}, nil
}

// Block returns the number of outputs produced per Process call.
func (c *Convolver) Block() int { return c.block }

// Window returns the number of input samples consumed per Process call:
// block + taps - 1 (the last taps-1 samples must be re-presented on the
// next call, exactly like a peeking filter that pops block items).
func (c *Convolver) Window() int { return c.block + c.taps - 1 }

// Process computes block outputs from window inputs: out[i] =
// sum_k h[k] * x[i+k] for i in [0, block).
func (c *Convolver) Process(x []float64, out []float64) error {
	if len(x) < c.Window() || len(out) < c.block {
		return fmt.Errorf("fft: Process needs %d inputs and %d outputs, got %d/%d", c.Window(), c.block, len(x), len(out))
	}
	for i := 0; i < c.size; i++ {
		if i < c.Window() {
			c.in[i] = complex(x[i], 0)
		} else {
			c.in[i] = 0
		}
	}
	if err := Forward(c.in); err != nil {
		return err
	}
	// Correlation y = x ⋆ h: multiply X by conj(H)... with our indexing
	// y[i] = sum_k h[k] x[i+k], equivalent to convolution of x with the
	// time-reversed h; in frequency domain Y = X * conj(H) when h is real.
	for i := range c.in {
		c.in[i] *= cmplx.Conj(c.hF[i])
	}
	if err := Inverse(c.in); err != nil {
		return err
	}
	for i := 0; i < c.block; i++ {
		out[i] = real(c.in[i])
	}
	return nil
}
