package fft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestForwardKnownValues(t *testing.T) {
	// FFT of [1,0,0,0] is [1,1,1,1]; of [1,1,1,1] is [4,0,0,0].
	x := []complex128{1, 0, 0, 0}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if !almostEq(real(v), 1) || !almostEq(imag(v), 0) {
			t.Errorf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
	y := []complex128{1, 1, 1, 1}
	if err := Forward(y); err != nil {
		t.Fatal(err)
	}
	if !almostEq(real(y[0]), 4) {
		t.Errorf("DC FFT[0] = %v, want 4", y[0])
	}
	for i := 1; i < 4; i++ {
		if !almostEq(real(y[i]), 0) || !almostEq(imag(y[i]), 0) {
			t.Errorf("DC FFT[%d] = %v, want 0", i, y[i])
		}
	}
}

func TestNonPow2Rejected(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Fatal("expected error for non-power-of-two length")
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		n := 1 << (2 + sizeSel%7) // 4..256
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if Forward(x) != nil || Inverse(x) != nil {
			return false
		}
		for i := range x {
			if math.Abs(real(x[i])-real(orig[i])) > 1e-9 ||
				math.Abs(imag(x[i])-imag(orig[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 64
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-7 {
		t.Errorf("Parseval violated: time %v, freq %v", timeEnergy, freqEnergy)
	}
}

func TestConvolverMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, taps := range []int{1, 3, 8, 17} {
		for _, block := range []int{1, 4, 64} {
			h := make([]float64, taps)
			for i := range h {
				h[i] = rng.NormFloat64()
			}
			cv, err := NewConvolver(h, block)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, cv.Window())
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			out := make([]float64, block)
			if err := cv.Process(x, out); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < block; i++ {
				var want float64
				for k := 0; k < taps; k++ {
					want += h[k] * x[i+k]
				}
				if math.Abs(out[i]-want) > 1e-8 {
					t.Errorf("taps=%d block=%d out[%d] = %v, want %v", taps, block, i, out[i], want)
				}
			}
		}
	}
}

func TestConvolverStreaming(t *testing.T) {
	// Sliding the window by block and re-presenting the overlap produces a
	// contiguous correct output stream.
	h := []float64{0.5, -0.25, 0.125}
	block := 8
	cv, err := NewConvolver(h, block)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	signal := make([]float64, 64)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	var stream []float64
	for start := 0; start+cv.Window() <= len(signal); start += block {
		out := make([]float64, block)
		if err := cv.Process(signal[start:start+cv.Window()], out); err != nil {
			t.Fatal(err)
		}
		stream = append(stream, out...)
	}
	for i := range stream {
		var want float64
		for k := range h {
			want += h[k] * signal[i+k]
		}
		if math.Abs(stream[i]-want) > 1e-8 {
			t.Errorf("stream[%d] = %v, want %v", i, stream[i], want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 64: 64, 65: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
