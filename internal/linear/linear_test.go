package linear

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamit/internal/exec"
	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

func firKernel(name string, weights []float64) *wfunc.Kernel {
	n := len(weights)
	b := wfunc.NewKernel(name, n, 1, 1)
	w := b.FieldArray("w", n, weights...)
	i := b.Local("i")
	sum := b.Local("sum")
	b.WorkBody(
		wfunc.Set(sum, wfunc.C(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i))))),
		wfunc.Pop1(),
		wfunc.Push1(sum),
	)
	return b.Build()
}

// runRep drives a linear rep over an input stream directly.
func runRep(t *testing.T, r *Rep, input []float64) []float64 {
	t.Helper()
	var out []float64
	for off := 0; off+r.Peek <= len(input); off += r.Pop {
		o, err := r.Apply(input[off:])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, o...)
		if r.Pop == 0 {
			break
		}
	}
	return out
}

func randStream(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Round(rng.NormFloat64()*8) / 4
	}
	return out
}

func randRep(rng *rand.Rand, maxRate int) *Rep {
	pop := rng.Intn(maxRate) + 1
	push := rng.Intn(maxRate) + 1
	peek := pop + rng.Intn(3)
	r := NewRep(peek, pop, push)
	for j := range r.A {
		for i := range r.A[j] {
			r.A[j][i] = math.Round(rng.NormFloat64() * 2)
		}
		r.B[j] = math.Round(rng.NormFloat64())
	}
	return r
}

func TestExtractFIR(t *testing.T) {
	weights := []float64{1, -2, 3, 0.5}
	r, err := Extract(firKernel("FIR", weights))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Toeplitz() {
		t.Fatal("FIR should extract to a Toeplitz rep")
	}
	taps := r.Taps()
	for i, w := range weights {
		if taps[i] != w {
			t.Errorf("taps[%d] = %v, want %v", i, taps[i], w)
		}
	}
	if r.B[0] != 0 {
		t.Errorf("FIR constant = %v, want 0", r.B[0])
	}
}

func TestExtractUsesInitConstants(t *testing.T) {
	// Weights computed by init (sines) must appear in the extracted rep.
	n := 4
	b := wfunc.NewKernel("SineFIR", n, 1, 1)
	w := b.FieldArray("w", n)
	i := b.Local("i")
	sum := b.Local("sum")
	b.InitBody(wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
		wfunc.SetFIdx(w, i, wfunc.Un(wfunc.Sin, wfunc.AddX(i, wfunc.C(1))))))
	b.WorkBody(
		wfunc.Set(sum, wfunc.C(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i))))),
		wfunc.Pop1(),
		wfunc.Push1(sum),
	)
	r, err := Extract(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := math.Sin(float64(i) + 1)
		if math.Abs(r.A[0][i]-want) > 1e-12 {
			t.Errorf("coeff[%d] = %v, want %v", i, r.A[0][i], want)
		}
	}
}

func TestExtractRateChangers(t *testing.T) {
	// Decimator: pop 2, push mean.
	b := wfunc.NewKernel("Dec", 2, 2, 1)
	b.WorkBody(wfunc.Push1(wfunc.MulX(wfunc.AddX(wfunc.PopE(), wfunc.PopE()), wfunc.C(0.5))))
	r, err := Extract(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if r.A[0][0] != 0.5 || r.A[0][1] != 0.5 {
		t.Errorf("decimator row = %v", r.A[0])
	}
	// Expander: push x, x/2.
	b2 := wfunc.NewKernel("Exp", 1, 1, 2)
	x := b2.Local("x")
	b2.WorkBody(
		wfunc.Set(x, wfunc.PopE()),
		wfunc.Push1(x),
		wfunc.Push1(wfunc.DivX(x, wfunc.C(2))),
	)
	r2, err := Extract(b2.Build())
	if err != nil {
		t.Fatal(err)
	}
	if r2.A[0][0] != 1 || r2.A[1][0] != 0.5 {
		t.Errorf("expander rows = %v %v", r2.A[0], r2.A[1])
	}
}

func TestExtractRejectsNonlinear(t *testing.T) {
	// Squarer: x*x.
	b := wfunc.NewKernel("Sq", 1, 1, 1)
	x := b.Local("x")
	b.WorkBody(wfunc.Set(x, wfunc.PopE()), wfunc.Push1(wfunc.MulX(x, x)))
	if _, err := Extract(b.Build()); err == nil {
		t.Fatal("squarer should not be linear")
	}
	// Stateful accumulator.
	b2 := wfunc.NewKernel("Acc", 1, 1, 1)
	a := b2.Field("a", 0)
	b2.WorkBody(wfunc.SetF(a, wfunc.AddX(a, wfunc.PopE())), wfunc.Push1(a))
	if _, err := Extract(b2.Build()); err == nil {
		t.Fatal("accumulator should not be linear")
	}
	// Data-dependent branch.
	b3 := wfunc.NewKernel("Br", 1, 1, 1)
	y := b3.Local("y")
	b3.WorkBody(
		wfunc.Set(y, wfunc.PopE()),
		wfunc.IfElse(wfunc.Bin(wfunc.Gt, y, wfunc.C(0)),
			[]wfunc.Stmt{wfunc.Push1(y)},
			[]wfunc.Stmt{wfunc.Push1(wfunc.Un(wfunc.Neg, y))}),
	)
	if _, err := Extract(b3.Build()); err == nil {
		t.Fatal("abs-filter should not be linear")
	}
}

func TestExpandEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		r := randRep(rng, 3)
		m := rng.Intn(3) + 2
		e := r.Expand(m)
		input := randStream(int64(trial), e.Peek+4*e.Pop)
		a := runRep(t, r, input)
		b := runRep(t, e, input)
		n := len(b)
		if len(a) < n {
			n = len(a)
		}
		if n == 0 {
			t.Fatalf("trial %d: no outputs to compare", trial)
		}
		for i := 0; i < n; i++ {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				t.Fatalf("trial %d: expand mismatch at %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

// Property: pipeline combination is semantics-preserving.
func TestQuickCombinePipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fR := randRep(rng, 3)
		gR := randRep(rng, 3)
		comb, err := CombinePipeline(fR, gR)
		if err != nil {
			t.Log(err)
			return false
		}
		input := randStream(seed, comb.Peek+6*max(comb.Pop, 1))
		// Reference: run F over input, then G over intermediates.
		inter := runRep(t, fR, input)
		want := runRep(t, gR, inter)
		got := runRep(t, comb, input)
		n := min(len(want), len(got))
		if n == 0 {
			return false
		}
		for i := 0; i < n; i++ {
			if math.Abs(want[i]-got[i]) > 1e-6 {
				t.Logf("seed %d: mismatch at %d: want %v got %v", seed, i, want[i], got[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: duplicate-split/round-robin-join combination preserves
// semantics.
func TestQuickCombineSplitJoinDuplicate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 2
		children := make([]*Rep, n)
		weights := make([]int, n)
		// Duplicate split: children must consume at a common rate per
		// combined firing; use pop=1 with varying peeks and pushes.
		for i := range children {
			push := rng.Intn(3) + 1
			peek := 1 + rng.Intn(3)
			r := NewRep(peek, 1, push)
			for j := range r.A {
				for k := range r.A[j] {
					r.A[j][k] = math.Round(rng.NormFloat64() * 2)
				}
			}
			children[i] = r
			weights[i] = push // one firing per cycle keeps rates aligned
		}
		comb, err := CombineSplitJoin(ir.Duplicate(), children, ir.RoundRobin(weights...))
		if err != nil {
			t.Log(err)
			return false
		}
		input := randStream(seed, comb.Peek+5*comb.Pop)
		// Reference: run each child over the full input; joiner interleaves
		// w_i items per cycle.
		outs := make([][]float64, n)
		for i, c := range children {
			outs[i] = runRep(t, c, input)
		}
		var want []float64
		for cyc := 0; ; cyc++ {
			ok := true
			for i := range outs {
				if len(outs[i]) < (cyc+1)*weights[i] {
					ok = false
				}
			}
			if !ok {
				break
			}
			for i := range outs {
				want = append(want, outs[i][cyc*weights[i]:(cyc+1)*weights[i]]...)
			}
		}
		got := runRep(t, comb, input)
		m := min(len(want), len(got))
		if m == 0 {
			return false
		}
		for i := 0; i < m; i++ {
			if math.Abs(want[i]-got[i]) > 1e-6 {
				t.Logf("seed %d: mismatch at %d: want %v got %v", seed, i, want[i], got[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineSplitJoinRoundRobinSplit(t *testing.T) {
	// RR(1,1) split to two gain filters, RR(1,1) join: combined must equal
	// per-lane gains.
	g1 := NewRep(1, 1, 1)
	g1.A[0][0] = 2
	g2 := NewRep(1, 1, 1)
	g2.A[0][0] = 3
	comb, err := CombineSplitJoin(ir.RoundRobin(1, 1), []*Rep{g1, g2}, ir.RoundRobin(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	input := []float64{10, 20, 30, 40}
	got := runRep(t, comb, input)
	want := []float64{20, 60, 60, 120}
	for i := range want {
		if i < len(got) && got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestToKernelMatchesRep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		r := randRep(rng, 3)
		k := ToKernel("M", r)
		if err := VerifyEquivalent(r, k, 6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestFreqKernelMatchesRep(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, taps := range []int{3, 8, 17, 32} {
		h := make([]float64, taps)
		for i := range h {
			h[i] = math.Round(rng.NormFloat64() * 4)
		}
		r := NewRep(taps, 1, 1)
		copy(r.A[0], h)
		k, err := FreqKernel("F", h, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyEquivalent(r, k, 4); err != nil {
			t.Fatalf("taps=%d: %v", taps, err)
		}
	}
}

func buildFIRFilter(name string, weights []float64) *ir.Filter {
	return &ir.Filter{Kernel: firKernel(name, weights), In: ir.TypeFloat, Out: ir.TypeFloat}
}

func TestOptimizePipelineEndToEnd(t *testing.T) {
	run := func(opt *Options) ([]float64, *Report) {
		src := exec.SliceSource("src", randStream(3, 64))
		snk, got := exec.SliceSink("snk")
		stream := ir.Stream(ir.Pipe("chain",
			buildFIRFilter("f1", []float64{1, 2, 3, 4, 5, 6, 7, 8}),
			buildFIRFilter("f2", []float64{2, -1, 0.5, 0.25}),
		))
		rep := &Report{}
		if opt != nil {
			var err error
			stream, err = Optimize(stream, *opt, rep)
			if err != nil {
				t.Fatal(err)
			}
		}
		prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, stream, snk)}
		out, err := exec.RunCollect(prog, 128, got)
		if err != nil {
			t.Fatal(err)
		}
		return out, rep
	}
	base, _ := run(nil)
	combined, repC := run(&Options{Combine: true, Force: true})
	if repC.Combined < 1 {
		t.Errorf("expected at least one combination, report: %+v", repC)
	}
	freq, repF := run(&Options{Combine: true, Frequency: true, Block: 32, Force: true})
	if repF.FreqTranslated < 1 {
		t.Errorf("expected frequency translation, report: %+v", repF)
	}
	n := min(len(base), min(len(combined), len(freq)))
	if n < 32 {
		t.Fatalf("too few outputs to compare: %d", n)
	}
	for i := 0; i < n; i++ {
		if math.Abs(base[i]-combined[i]) > 1e-6 {
			t.Fatalf("combined diverges at %d: %v vs %v", i, combined[i], base[i])
		}
		if math.Abs(base[i]-freq[i]) > 1e-6 {
			t.Fatalf("freq diverges at %d: %v vs %v", i, freq[i], base[i])
		}
	}
}

func TestOptimizeSplitJoinEndToEnd(t *testing.T) {
	mk := func() ir.Stream {
		return ir.SJ("eq", ir.Duplicate(), ir.RoundRobin(1, 1),
			buildFIRFilter("b1", []float64{1, 0.5, 0.25, 2, 1, -1, 3, 0.125}),
			buildFIRFilter("b2", []float64{-1, 2, 0.75, 1, 0.5, 4, -2, 1}),
		)
	}
	runIt := func(s ir.Stream) []float64 {
		src := exec.SliceSource("src", randStream(9, 32))
		snk, got := exec.SliceSink("snk")
		prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, s, snk)}
		out, err := exec.RunCollect(prog, 64, got)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := runIt(mk())
	rep := &Report{}
	opt, err := Optimize(mk(), Options{Combine: true, Force: true}, rep)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Combined < 1 {
		t.Errorf("splitjoin was not combined: %+v", rep)
	}
	optOut := runIt(opt)
	n := min(len(base), len(optOut))
	if n < 16 {
		t.Fatalf("too few outputs: %d", n)
	}
	for i := 0; i < n; i++ {
		if math.Abs(base[i]-optOut[i]) > 1e-6 {
			t.Fatalf("optimized splitjoin diverges at %d: %v vs %v", i, optOut[i], base[i])
		}
	}
}

func TestAnalyzeReportsLinearity(t *testing.T) {
	nonlin := func() *ir.Filter {
		b := wfunc.NewKernel("sq", 1, 1, 1)
		x := b.Local("x")
		b.WorkBody(wfunc.Set(x, wfunc.PopE()), wfunc.Push1(wfunc.MulX(x, x)))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	s := ir.Pipe("p", buildFIRFilter("lin", []float64{1, 2}), nonlin)
	m := Analyze(s)
	if _, ok := m["lin"]; !ok {
		t.Error("FIR not reported linear")
	}
	if _, ok := m["sq"]; ok {
		t.Error("squarer wrongly reported linear")
	}
}

func TestFreqCostCrossover(t *testing.T) {
	// Small FIRs should stay direct; large FIRs should prefer frequency.
	small := NewRep(4, 1, 1)
	big := NewRep(512, 1, 1)
	for i := range big.A[0] {
		big.A[0][i] = 1
	}
	for i := range small.A[0] {
		small.A[0][i] = 1
	}
	if FreqCostPerOutput(4, 64) < DirectCostPerOutput(small) {
		t.Error("4-tap FIR should not be frequency-translated")
	}
	if FreqCostPerOutput(512, 512) >= DirectCostPerOutput(big) {
		t.Error("512-tap FIR should be frequency-translated")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestExpandIdentityCase(t *testing.T) {
	r := NewRep(2, 1, 1)
	r.A[0][0] = 1
	if e := r.Expand(1); e != r {
		t.Error("Expand(1) should return the receiver")
	}
}

func TestCombineSplitJoinRejections(t *testing.T) {
	a := NewRep(1, 1, 1)
	a.A[0][0] = 1
	if _, err := CombineSplitJoin(ir.Duplicate(), nil, ir.RoundRobin()); err == nil {
		t.Error("empty splitjoin should be rejected")
	}
	if _, err := CombineSplitJoin(ir.Duplicate(), []*Rep{a}, ir.Duplicate()); err == nil {
		t.Error("duplicate joiner should be rejected")
	}
	if _, err := CombineSplitJoin(ir.Null(), []*Rep{a}, ir.RoundRobin(1)); err == nil {
		t.Error("null splitter should be rejected")
	}
	// Duplicate split with mismatched consumption rates.
	b := NewRep(2, 2, 1)
	b.A[0][0] = 1
	if _, err := CombineSplitJoin(ir.Duplicate(), []*Rep{a, b}, ir.RoundRobin(1, 1)); err == nil {
		t.Error("mismatched duplicate consumption should be rejected")
	}
}

func TestVerifyEquivalentDetectsDivergence(t *testing.T) {
	r := NewRep(2, 1, 1)
	r.A[0][0] = 1
	r.A[0][1] = 2
	// A kernel computing something different.
	wrong := firKernel("wrong", []float64{1, 3})
	if err := VerifyEquivalent(r, wrong, 4); err == nil {
		t.Error("divergence not detected")
	}
	right := firKernel("right", []float64{1, 2})
	if err := VerifyEquivalent(r, right, 4); err != nil {
		t.Errorf("false positive: %v", err)
	}
}

func TestFreqKernelRejectsBadArgs(t *testing.T) {
	if _, err := FreqKernel("x", nil, 8); err == nil {
		t.Error("empty taps should be rejected")
	}
	if _, err := FreqKernel("x", []float64{1}, 0); err == nil {
		t.Error("zero block should be rejected")
	}
}

func TestOptimizeLeavesFeedbackAlone(t *testing.T) {
	body := buildFIRFilter("loopfir", []float64{1, 1})
	fl := &ir.FeedbackLoop{
		Name: "fl", Join: ir.RoundRobin(1, 1), Body: body,
		Split: ir.Duplicate(), Delay: 2,
	}
	top, err := Optimize(fl, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := top.(*ir.FeedbackLoop); !ok {
		t.Errorf("feedback loop should survive optimization, got %T", top)
	}
}

func TestAnalyzeSkipsNative(t *testing.T) {
	n := &ir.Filter{
		Kernel: firKernel("nativefir", []float64{1}),
		In:     ir.TypeFloat, Out: ir.TypeFloat,
		WorkFn: func(in, out wfunc.Tape, st *wfunc.State) {},
	}
	m := Analyze(ir.Pipe("p", n))
	if len(m) != 0 {
		t.Errorf("native filters must be opaque to analysis: %v", m)
	}
}

// TestOptimizeVerifyMode: with Verify set, every replacement is
// cross-checked during optimization; a correct pipeline passes.
func TestOptimizeVerifyMode(t *testing.T) {
	s := ir.Pipe("chain",
		buildFIRFilter("v1", []float64{1, 2, 3, 4}),
		buildFIRFilter("v2", []float64{0.5, -1}),
	)
	rep := &Report{}
	if _, err := Optimize(s, Options{Combine: true, Force: true, Verify: true}, rep); err != nil {
		t.Fatal(err)
	}
	if rep.Combined < 1 {
		t.Errorf("expected combination under verify mode: %+v", rep)
	}
}
