package linear

import (
	"fmt"
	"math"

	"streamit/internal/wfunc"
)

// Extract performs the paper's linear extraction analysis: it abstractly
// interprets a kernel's work function with affine values (a coefficient per
// peek-window position plus a constant) and returns the filter's linear
// representation, or an error explaining why the filter is not linear.
//
// Requirements for success: the work function writes no fields (stateless),
// all control flow is resolvable at analysis time (loop bounds and branch
// conditions evaluate to constants), array indices and peek offsets are
// constants after resolution, and every pushed value is an affine
// combination of peeked values. Fields may be read; their values are the
// constants produced by the init function.
func Extract(k *wfunc.Kernel) (*Rep, error) {
	if wfunc.WritesFields(k.Work) {
		return nil, fmt.Errorf("filter %s is stateful: work writes fields", k.Name)
	}
	if wfunc.SendsMessages(k.Work) {
		return nil, fmt.Errorf("filter %s sends messages", k.Name)
	}
	if k.Push == 0 {
		return nil, fmt.Errorf("filter %s is a sink; sinks are not linear-optimized", k.Name)
	}
	// Run init concretely to obtain field constants.
	st := k.NewState()
	if k.Init != nil {
		env := wfunc.NewEnv(k.Init)
		env.State = st
		if err := wfunc.Exec(k.Init, env); err != nil {
			return nil, fmt.Errorf("filter %s: init failed: %w", k.Name, err)
		}
	}
	ex := &extractor{
		k:      k,
		state:  st,
		locals: make([]aff, k.Work.NumLocals),
		arrays: make([][]aff, len(k.Work.ArraySizes)),
	}
	for i, n := range k.Work.ArraySizes {
		ex.arrays[i] = make([]aff, n)
		for j := range ex.arrays[i] {
			ex.arrays[i][j] = constAff(0)
		}
	}
	for i := range ex.locals {
		ex.locals[i] = constAff(0)
	}
	rep := NewRep(k.Peek, k.Pop, k.Push)
	ex.rep = rep
	if _, err := ex.block(k.Work.Body); err != nil {
		return nil, fmt.Errorf("filter %s: %w", k.Name, err)
	}
	if ex.pops != k.Pop {
		return nil, fmt.Errorf("filter %s: analysis saw %d pops, declared %d", k.Name, ex.pops, k.Pop)
	}
	if ex.pushes != k.Push {
		return nil, fmt.Errorf("filter %s: analysis saw %d pushes, declared %d", k.Name, ex.pushes, k.Push)
	}
	return rep, nil
}

// aff is an affine value: konst + sum coeffs[i]*peek(i). A nil coeffs slice
// means a pure constant.
type aff struct {
	coeffs []float64
	konst  float64
}

func constAff(v float64) aff { return aff{konst: v} }

func (a aff) isConst() bool {
	for _, c := range a.coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

func (a aff) scale(s float64) aff {
	out := aff{konst: a.konst * s}
	if len(a.coeffs) > 0 && s != 0 {
		out.coeffs = make([]float64, len(a.coeffs))
		for i, c := range a.coeffs {
			out.coeffs[i] = c * s
		}
	}
	return out
}

func (a aff) add(b aff) aff {
	n := len(a.coeffs)
	if len(b.coeffs) > n {
		n = len(b.coeffs)
	}
	out := aff{konst: a.konst + b.konst}
	if n > 0 {
		out.coeffs = make([]float64, n)
		copy(out.coeffs, a.coeffs)
		for i, c := range b.coeffs {
			out.coeffs[i] += c
		}
	}
	return out
}

type extractor struct {
	k      *wfunc.Kernel
	state  *wfunc.State
	locals []aff
	arrays [][]aff
	pops   int
	pushes int
	rep    *Rep
}

type ctl int

const (
	ctlNone ctl = iota
	ctlBreak
	ctlContinue
)

func (ex *extractor) block(body []wfunc.Stmt) (ctl, error) {
	for _, s := range body {
		c, err := ex.stmt(s)
		if err != nil || c != ctlNone {
			return c, err
		}
	}
	return ctlNone, nil
}

func (ex *extractor) stmt(s wfunc.Stmt) (ctl, error) {
	switch s := s.(type) {
	case *wfunc.Assign:
		v, err := ex.eval(s.X)
		if err != nil {
			return ctlNone, err
		}
		return ctlNone, ex.store(&s.LHS, v)
	case *wfunc.PushStmt:
		v, err := ex.eval(s.X)
		if err != nil {
			return ctlNone, err
		}
		if ex.pushes >= ex.rep.Push {
			return ctlNone, fmt.Errorf("more pushes than declared")
		}
		row := ex.rep.A[ex.pushes]
		for i, c := range v.coeffs {
			if c != 0 && i >= ex.rep.Peek {
				return ctlNone, fmt.Errorf("push depends on peek(%d) beyond window %d", i, ex.rep.Peek)
			}
			if i < ex.rep.Peek {
				row[i] = c
			}
		}
		ex.rep.B[ex.pushes] = v.konst
		ex.pushes++
		return ctlNone, nil
	case *wfunc.PopStmt:
		ex.pops++
		return ctlNone, nil
	case *wfunc.If:
		c, err := ex.evalConst(s.C, "branch condition")
		if err != nil {
			return ctlNone, err
		}
		if c != 0 {
			return ex.block(s.Then)
		}
		return ex.block(s.Else)
	case *wfunc.For:
		from, err := ex.evalConst(s.From, "loop bound")
		if err != nil {
			return ctlNone, err
		}
		ex.locals[s.Var] = constAff(from)
		for iter := 0; ; iter++ {
			if iter > 1<<20 {
				return ctlNone, fmt.Errorf("loop does not terminate during analysis")
			}
			iv := ex.locals[s.Var]
			if !iv.isConst() {
				return ctlNone, fmt.Errorf("loop induction variable became input-dependent")
			}
			to, err := ex.evalConst(s.To, "loop bound")
			if err != nil {
				return ctlNone, err
			}
			if !(iv.konst < to) {
				return ctlNone, nil
			}
			c, err := ex.block(s.Body)
			if err != nil {
				return ctlNone, err
			}
			if c == ctlBreak {
				return ctlNone, nil
			}
			step := 1.0
			if s.Step != nil {
				if step, err = ex.evalConst(s.Step, "loop step"); err != nil {
					return ctlNone, err
				}
			}
			ex.locals[s.Var] = constAff(ex.locals[s.Var].konst + step)
		}
	case *wfunc.While:
		for iter := 0; ; iter++ {
			if iter > 1<<20 {
				return ctlNone, fmt.Errorf("while loop does not terminate during analysis")
			}
			c, err := ex.evalConst(s.C, "while condition")
			if err != nil {
				return ctlNone, err
			}
			if c == 0 {
				return ctlNone, nil
			}
			cc, err := ex.block(s.Body)
			if err != nil {
				return ctlNone, err
			}
			if cc == ctlBreak {
				return ctlNone, nil
			}
		}
	case *wfunc.Break:
		return ctlBreak, nil
	case *wfunc.Continue:
		return ctlContinue, nil
	case *wfunc.Send:
		return ctlNone, fmt.Errorf("message send in work function")
	case *wfunc.Print:
		return ctlNone, fmt.Errorf("println in work function (would be dropped by combination)")
	default:
		return ctlNone, fmt.Errorf("unsupported statement %T", s)
	}
}

func (ex *extractor) store(lv *wfunc.LValue, v aff) error {
	switch lv.Kind {
	case wfunc.LVLocal:
		ex.locals[lv.Idx] = v
	case wfunc.LVLocalArr:
		ix, err := ex.evalConst(lv.Index, "array index")
		if err != nil {
			return err
		}
		i := int(ix)
		if i < 0 || i >= len(ex.arrays[lv.Idx]) {
			return fmt.Errorf("array index %d out of range", i)
		}
		ex.arrays[lv.Idx][i] = v
	case wfunc.LVField, wfunc.LVFieldArr:
		return fmt.Errorf("work writes a field (stateful)")
	}
	return nil
}

func (ex *extractor) evalConst(e wfunc.Expr, what string) (float64, error) {
	v, err := ex.eval(e)
	if err != nil {
		return 0, err
	}
	if !v.isConst() {
		return 0, fmt.Errorf("%s depends on input data", what)
	}
	return v.konst, nil
}

func (ex *extractor) eval(e wfunc.Expr) (aff, error) {
	switch e := e.(type) {
	case *wfunc.Const:
		return constAff(e.V), nil
	case *wfunc.LocalRef:
		return ex.locals[e.Idx], nil
	case *wfunc.FieldRef:
		return constAff(ex.state.Scalars[e.Idx]), nil
	case *wfunc.LocalIndex:
		ix, err := ex.evalConst(e.Index, "array index")
		if err != nil {
			return aff{}, err
		}
		i := int(ix)
		if i < 0 || i >= len(ex.arrays[e.Arr]) {
			return aff{}, fmt.Errorf("array index %d out of range", i)
		}
		return ex.arrays[e.Arr][i], nil
	case *wfunc.FieldIndex:
		ix, err := ex.evalConst(e.Index, "array index")
		if err != nil {
			return aff{}, err
		}
		i := int(ix)
		if i < 0 || i >= len(ex.state.Arrays[e.Arr]) {
			return aff{}, fmt.Errorf("field array index %d out of range", i)
		}
		return constAff(ex.state.Arrays[e.Arr][i]), nil
	case *wfunc.Peek:
		ix, err := ex.evalConst(e.Index, "peek offset")
		if err != nil {
			return aff{}, err
		}
		return ex.peekAff(int(ix))
	case *wfunc.PopExpr:
		v, err := ex.peekAff(0)
		if err != nil {
			return aff{}, err
		}
		ex.pops++
		return v, nil
	case *wfunc.Unary:
		x, err := ex.eval(e.X)
		if err != nil {
			return aff{}, err
		}
		if e.Op == wfunc.Neg {
			return x.scale(-1), nil
		}
		if x.isConst() {
			return constAff(applyUnary(e.Op, x.konst)), nil
		}
		return aff{}, fmt.Errorf("nonlinear unary %v of input-dependent value", e.Op)
	case *wfunc.Binary:
		a, err := ex.eval(e.A)
		if err != nil {
			return aff{}, err
		}
		b, err := ex.eval(e.B)
		if err != nil {
			return aff{}, err
		}
		switch e.Op {
		case wfunc.Add:
			return a.add(b), nil
		case wfunc.Sub:
			return a.add(b.scale(-1)), nil
		case wfunc.Mul:
			if a.isConst() {
				return b.scale(a.konst), nil
			}
			if b.isConst() {
				return a.scale(b.konst), nil
			}
			return aff{}, fmt.Errorf("product of two input-dependent values is nonlinear")
		case wfunc.Div:
			if b.isConst() {
				if b.konst == 0 {
					return aff{}, fmt.Errorf("division by zero during analysis")
				}
				return a.scale(1 / b.konst), nil
			}
			return aff{}, fmt.Errorf("division by input-dependent value is nonlinear")
		default:
			if a.isConst() && b.isConst() {
				return constAff(applyBinary(e.Op, a.konst, b.konst)), nil
			}
			return aff{}, fmt.Errorf("nonlinear operator %v on input-dependent values", e.Op)
		}
	case *wfunc.Cond:
		c, err := ex.evalConst(e.C, "conditional")
		if err != nil {
			return aff{}, err
		}
		if c != 0 {
			return ex.eval(e.A)
		}
		return ex.eval(e.B)
	default:
		return aff{}, fmt.Errorf("unsupported expression %T", e)
	}
}

// peekAff returns the affine value of peek(i) relative to the current pop
// position: absolute window index pops + i.
func (ex *extractor) peekAff(i int) (aff, error) {
	abs := ex.pops + i
	if abs < 0 || abs >= ex.k.Peek {
		return aff{}, fmt.Errorf("peek index %d (absolute %d) outside window %d", i, abs, ex.k.Peek)
	}
	coeffs := make([]float64, abs+1)
	coeffs[abs] = 1
	return aff{coeffs: coeffs}, nil
}

func applyUnary(op wfunc.UnOp, x float64) float64 {
	switch op {
	case wfunc.Not:
		if x == 0 {
			return 1
		}
		return 0
	case wfunc.BitNot:
		return float64(^int64(x))
	case wfunc.Trunc:
		return math.Trunc(x)
	case wfunc.Abs:
		return math.Abs(x)
	case wfunc.Sin:
		return math.Sin(x)
	case wfunc.Cos:
		return math.Cos(x)
	case wfunc.Tan:
		return math.Tan(x)
	case wfunc.Asin:
		return math.Asin(x)
	case wfunc.Acos:
		return math.Acos(x)
	case wfunc.Atan:
		return math.Atan(x)
	case wfunc.Exp:
		return math.Exp(x)
	case wfunc.Log:
		return math.Log(x)
	case wfunc.Sqrt:
		return math.Sqrt(x)
	case wfunc.Floor:
		return math.Floor(x)
	case wfunc.Ceil:
		return math.Ceil(x)
	case wfunc.Round:
		return math.Round(x)
	}
	return math.NaN()
}

func applyBinary(op wfunc.BinOp, a, b float64) float64 {
	switch op {
	case wfunc.Mod:
		if int64(b) == 0 {
			return math.NaN()
		}
		return float64(int64(a) % int64(b))
	case wfunc.Pow:
		return math.Pow(a, b)
	case wfunc.Atan2:
		return math.Atan2(a, b)
	case wfunc.Min:
		return math.Min(a, b)
	case wfunc.Max:
		return math.Max(a, b)
	case wfunc.And:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case wfunc.Or:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	case wfunc.BitAnd:
		return float64(int64(a) & int64(b))
	case wfunc.BitOr:
		return float64(int64(a) | int64(b))
	case wfunc.BitXor:
		return float64(int64(a) ^ int64(b))
	case wfunc.Shl:
		return float64(int64(a) << (uint64(b) & 63))
	case wfunc.Shr:
		return float64(int64(a) >> (uint64(b) & 63))
	case wfunc.Eq:
		if a == b {
			return 1
		}
		return 0
	case wfunc.Ne:
		if a != b {
			return 1
		}
		return 0
	case wfunc.Lt:
		if a < b {
			return 1
		}
		return 0
	case wfunc.Le:
		if a <= b {
			return 1
		}
		return 0
	case wfunc.Gt:
		if a > b {
			return 1
		}
		return 0
	case wfunc.Ge:
		if a >= b {
			return 1
		}
		return 0
	}
	return math.NaN()
}
