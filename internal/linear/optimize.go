package linear

import (
	"fmt"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// Options control the linear optimizer.
type Options struct {
	// Combine collapses adjacent linear filters (pipelines and split-joins)
	// into single matrix filters when the estimated cost decreases.
	Combine bool
	// Frequency translates convolution-shaped linear filters into
	// overlap-save FFT kernels when beneficial.
	Frequency bool
	// Block is the output block size for frequency kernels (default 64).
	Block int
	// Force applies transformations even when the cost model predicts no
	// benefit (used by ablation benchmarks).
	Force bool
	// Verify cross-checks every generated replacement kernel against its
	// linear representation on a pseudo-random stream before accepting it;
	// failures abort the optimization with an error.
	Verify bool
}

// DefaultOptions enables everything with the standard block size.
func DefaultOptions() Options {
	return Options{Combine: true, Frequency: true, Block: 64}
}

// Report summarizes what the optimizer did.
type Report struct {
	LinearFilters  int // linear filters detected
	TotalFilters   int
	Combined       int // filters removed by combination
	FreqTranslated int // filters converted to frequency domain
	MatrixReplaced int // regions replaced by direct matrix kernels
	Notes          []string
}

// Optimize rewrites a hierarchical stream, replacing linear regions with
// collapsed matrix filters and/or frequency-domain kernels. The input
// stream is not modified; shared filters are reused where untouched.
func Optimize(s ir.Stream, opt Options, rep *Report) (ir.Stream, error) {
	if opt.Block <= 0 {
		opt.Block = 64
	}
	if rep == nil {
		rep = &Report{}
	}
	o := &optimizer{opt: opt, rep: rep}
	return o.rewrite(s)
}

// Analyze reports which filters in a stream are linear, without rewriting.
func Analyze(s ir.Stream) map[string]*Rep {
	out := map[string]*Rep{}
	var walk func(ir.Stream)
	walk = func(s ir.Stream) {
		switch s := s.(type) {
		case *ir.Filter:
			if s.WorkFn != nil {
				return
			}
			if r, err := Extract(s.Kernel); err == nil {
				out[s.Kernel.Name] = r
			}
		case *ir.Pipeline:
			for _, c := range s.Children {
				walk(c)
			}
		case *ir.SplitJoin:
			for _, c := range s.Children {
				walk(c)
			}
		case *ir.FeedbackLoop:
			walk(s.Body)
			if s.Loop != nil {
				walk(s.Loop)
			}
		}
	}
	walk(s)
	return out
}

type optimizer struct {
	opt  Options
	rep  *Report
	uniq int
	err  error
}

// linRes is the result of rewriting a stream: the (possibly replaced)
// stream plus its linear representation if the whole stream is linear.
type linRes struct {
	stream ir.Stream
	rep    *Rep
	nsrc   int // source filters folded into rep (for Combined accounting)
}

func (o *optimizer) rewrite(s ir.Stream) (ir.Stream, error) {
	res, err := o.walk(s)
	if err != nil {
		return nil, err
	}
	out := o.finalize(res)
	if o.err != nil {
		return nil, o.err
	}
	return out, nil
}

func (o *optimizer) name(prefix string) string {
	o.uniq++
	return fmt.Sprintf("%s_%d", prefix, o.uniq)
}

// walk rewrites bottom-up. It returns the stream's linear rep when the
// entire (rewritten) stream is linear, enabling combination higher up.
func (o *optimizer) walk(s ir.Stream) (linRes, error) {
	switch s := s.(type) {
	case *ir.Filter:
		o.rep.TotalFilters++
		if s.WorkFn != nil {
			return linRes{stream: s}, nil
		}
		r, err := Extract(s.Kernel)
		if err != nil {
			return linRes{stream: s}, nil
		}
		o.rep.LinearFilters++
		return linRes{stream: s, rep: r, nsrc: 1}, nil

	case *ir.Pipeline:
		return o.walkPipeline(s)

	case *ir.SplitJoin:
		return o.walkSplitJoin(s)

	case *ir.FeedbackLoop:
		body, err := o.rewrite(s.Body)
		if err != nil {
			return linRes{}, err
		}
		loop := s.Loop
		if loop != nil {
			if loop, err = o.rewrite(loop); err != nil {
				return linRes{}, err
			}
		}
		fl := &ir.FeedbackLoop{Name: s.Name, Join: s.Join, Body: body,
			Split: s.Split, Loop: loop, Delay: s.Delay, InitPath: s.InitPath}
		return linRes{stream: fl}, nil
	}
	return linRes{}, fmt.Errorf("linear: unknown stream type %T", s)
}

func (o *optimizer) walkPipeline(p *ir.Pipeline) (linRes, error) {
	kids := make([]linRes, len(p.Children))
	for i, c := range p.Children {
		r, err := o.walk(c)
		if err != nil {
			return linRes{}, err
		}
		kids[i] = r
	}
	if !o.opt.Combine {
		out := &ir.Pipeline{Name: p.Name}
		for _, k := range kids {
			out.Add(o.finalize(k))
		}
		return linRes{stream: out}, nil
	}

	// Merge maximal runs of linear children.
	var merged []linRes
	for _, k := range kids {
		if k.rep != nil && len(merged) > 0 && merged[len(merged)-1].rep != nil {
			prev := &merged[len(merged)-1]
			comb, err := CombinePipeline(prev.rep, k.rep)
			if err == nil && (o.opt.Force || worthCombining(prev.rep, k.rep, comb)) {
				prev.rep = comb
				prev.nsrc += k.nsrc
				prev.stream = nil // replaced on finalize
				continue
			}
		}
		merged = append(merged, k)
	}
	if len(merged) == 1 && merged[0].rep != nil {
		// Whole pipeline is one linear region: let the parent keep
		// combining; finalize only at the top.
		return merged[0], nil
	}
	out := &ir.Pipeline{Name: p.Name}
	for _, k := range merged {
		out.Add(o.finalize(k))
	}
	return linRes{stream: out}, nil
}

func (o *optimizer) walkSplitJoin(sj *ir.SplitJoin) (linRes, error) {
	kids := make([]linRes, len(sj.Children))
	allLinear := true
	for i, c := range sj.Children {
		r, err := o.walk(c)
		if err != nil {
			return linRes{}, err
		}
		kids[i] = r
		if r.rep == nil {
			allLinear = false
		}
	}
	if o.opt.Combine && allLinear && sj.Join.Kind == ir.SJRoundRobin {
		reps := make([]*Rep, len(kids))
		total := 0
		for i, k := range kids {
			reps[i] = k.rep
			total += k.nsrc
		}
		join := sj.Join
		if len(join.Weights) == 0 {
			join.Weights = make([]int, len(kids))
			for i := range join.Weights {
				join.Weights[i] = 1
			}
		}
		split := sj.Split
		if split.Kind == ir.SJRoundRobin && len(split.Weights) == 0 {
			split.Weights = make([]int, len(kids))
			for i := range split.Weights {
				split.Weights[i] = 1
			}
		}
		comb, err := CombineSplitJoin(split, reps, join)
		if err == nil && (o.opt.Force || worthCombiningSJ(reps, comb)) {
			return linRes{rep: comb, nsrc: total}, nil
		}
	}
	out := &ir.SplitJoin{Name: sj.Name, Split: sj.Split, Join: sj.Join}
	for _, k := range kids {
		out.Add(o.finalize(k))
	}
	return linRes{stream: out}, nil
}

// finalize materializes a linear region as a concrete filter: a frequency
// kernel when profitable, else a direct matrix kernel, else the original
// stream when the region is a single untouched filter.
func (o *optimizer) finalize(k linRes) ir.Stream {
	if k.rep == nil {
		return k.stream
	}
	if k.stream != nil && k.nsrc <= 1 {
		// Single linear filter: consider frequency translation only.
		if repl := o.maybeFreq(k.rep); repl != nil {
			return repl
		}
		return k.stream
	}
	// A combined region.
	o.rep.Combined += k.nsrc - 1
	if repl := o.maybeFreq(k.rep); repl != nil {
		return repl
	}
	o.rep.MatrixReplaced++
	kern := ToKernel(o.name("LinearMatrix"), k.rep)
	o.verify(k.rep, kern)
	return &ir.Filter{Kernel: kern, In: ir.TypeFloat, Out: ir.TypeFloat}
}

// verify cross-checks a replacement kernel when Options.Verify is set.
func (o *optimizer) verify(r *Rep, kern *wfunc.Kernel) {
	if !o.opt.Verify || o.err != nil || r.Pop == 0 {
		return
	}
	if err := VerifyEquivalent(r, kern, 4); err != nil {
		o.err = fmt.Errorf("linear: replacement %s failed verification: %w", kern.Name, err)
	}
}

func (o *optimizer) maybeFreq(r *Rep) ir.Stream {
	if !o.opt.Frequency || !r.Toeplitz() {
		return nil
	}
	if r.B[0] != 0 {
		return nil // affine offset not supported by the frequency kernel
	}
	taps := r.Taps()
	// Pick the block size minimizing estimated cost per output; Options.
	// Block acts as a lower bound on the candidates considered.
	best, bestCost := 0, 0.0
	for _, blk := range []int{64, 128, 256, 512, 1024, 2048} {
		if blk < o.opt.Block {
			continue
		}
		c := FreqCostPerOutput(len(taps), blk)
		if best == 0 || c < bestCost {
			best, bestCost = blk, c
		}
	}
	if best == 0 {
		best, bestCost = o.opt.Block, FreqCostPerOutput(len(taps), o.opt.Block)
	}
	if !o.opt.Force && bestCost >= DirectCostPerOutput(r) {
		return nil
	}
	kern, err := FreqKernel(o.name("LinearFreq"), taps, best)
	if err != nil {
		return nil
	}
	o.verify(r, kern)
	o.rep.FreqTranslated++
	return &ir.Filter{Kernel: kern, In: ir.TypeFloat, Out: ir.TypeFloat}
}

// worthCombining: combining two pipelined linear filters pays off when the
// combined matrix does no more multiplies per steady output than the pair.
func worthCombining(f, g, comb *Rep) bool {
	// Costs per combined firing: the pair executes f and g enough times to
	// match comb's rates.
	u := lcm(f.Push, g.Pop)
	fFires := u / f.Push
	gFires := u / g.Pop
	pairCost := float64(fFires*costOf(f) + gFires*costOf(g))
	return float64(costOf(comb)) <= pairCost*1.05
}

func worthCombiningSJ(reps []*Rep, comb *Rep) bool {
	pair := 0.0
	for _, r := range reps {
		fires := 1.0
		if r.Pop > 0 {
			fires = float64(comb.Pop) / float64(r.Pop)
		}
		pair += fires * float64(costOf(r))
	}
	return float64(costOf(comb)) <= pair*1.25
}

// costOf approximates a rep's per-firing execution cost in the CSR matrix
// kernel: one multiply-add per nonzero plus per-row overhead.
func costOf(r *Rep) int {
	return r.NonZeros() + 2*r.Push
}

// VerifyEquivalent checks that a replacement kernel computes the same
// function as a reference rep on a pseudo-random input stream; used by
// tests and as an internal sanity check in -verify modes.
func VerifyEquivalent(r *Rep, k *wfunc.Kernel, firings int) error {
	if r.Pop == 0 || k.Pop == 0 {
		return fmt.Errorf("linear: verification requires consuming filters")
	}
	if k.Pop%r.Pop != 0 && r.Pop%k.Pop != 0 {
		return fmt.Errorf("linear: rate mismatch between rep (%d) and kernel (%d)", r.Pop, k.Pop)
	}
	// Drive both over the same input and compare output prefixes.
	need := k.Peek + (firings-1)*k.Pop
	if alt := r.Peek + (firings*k.Pop/r.Pop-1)*r.Pop; alt > need {
		need = alt
	}
	input := make([]float64, need+r.Peek+k.Peek)
	seed := 1.0
	for i := range input {
		seed = seed*1103515245/65536 + 12345
		seed = float64(int64(seed) % 1000)
		input[i] = seed / 100
	}
	got, err := wfunc.RunKernel(k, input)
	if err != nil {
		return err
	}
	var want []float64
	for off := 0; off+r.Peek <= len(input); off += r.Pop {
		out, err := r.Apply(input[off:])
		if err != nil {
			return err
		}
		want = append(want, out...)
	}
	nCmp := len(got)
	if len(want) < nCmp {
		nCmp = len(want)
	}
	for i := 0; i < nCmp; i++ {
		if d := got[i] - want[i]; d > 1e-6 || d < -1e-6 {
			return fmt.Errorf("linear: replacement diverges at output %d: %v vs %v", i, got[i], want[i])
		}
	}
	return nil
}
