// Package linear implements the paper's linear analysis and optimization:
// detecting filters whose outputs are affine combinations of their inputs
// (FIR filters, expanders, compressors, DCTs...), collapsing neighboring
// linear nodes into a single linear representation (eliminating redundant
// computation), and translating convolutions into the frequency domain for
// algorithmic savings.
//
// Replacement filters are generated back into the wfunc IL, so optimized
// and unoptimized programs execute through the same interpreter and
// measured speedups reflect the optimization, not a change of runtime.
package linear

import "fmt"

// Rep is the linear representation of a filter: on each firing it peeks
// Peek items, pops Pop, and pushes Push items where
//
//	out[j] = sum_i A[j][i] * peek(i) + B[j]
//
// Row j = 0 is the first item pushed.
type Rep struct {
	Peek, Pop, Push int
	A               [][]float64
	B               []float64
}

// NewRep allocates a zero representation with the given rates.
func NewRep(peek, pop, push int) *Rep {
	r := &Rep{Peek: peek, Pop: pop, Push: push, B: make([]float64, push)}
	r.A = make([][]float64, push)
	for j := range r.A {
		r.A[j] = make([]float64, peek)
	}
	return r
}

// Cols returns the peek-window width.
func (r *Rep) Cols() int { return r.Peek }

// NonZeros counts nonzero matrix coefficients (the multiply count of a
// direct implementation).
func (r *Rep) NonZeros() int {
	n := 0
	for _, row := range r.A {
		for _, v := range row {
			if v != 0 {
				n++
			}
		}
	}
	return n
}

// Apply computes the outputs for a concrete peek window (for verification).
func (r *Rep) Apply(window []float64) ([]float64, error) {
	if len(window) < r.Peek {
		return nil, fmt.Errorf("linear: window %d smaller than peek %d", len(window), r.Peek)
	}
	out := make([]float64, r.Push)
	for j := range out {
		acc := r.B[j]
		row := r.A[j]
		for i, c := range row {
			if c != 0 {
				acc += c * window[i]
			}
		}
		out[j] = acc
	}
	return out, nil
}

// Expand returns the representation of m consecutive firings treated as
// one: peek grows by (m-1)*pop, and the j-th firing's rows shift right by
// j*pop columns.
func (r *Rep) Expand(m int) *Rep {
	if m <= 1 {
		return r
	}
	e := NewRep(r.Peek+(m-1)*r.Pop, m*r.Pop, m*r.Push)
	for f := 0; f < m; f++ {
		for j := 0; j < r.Push; j++ {
			dst := e.A[f*r.Push+j]
			for i, c := range r.A[j] {
				dst[f*r.Pop+i] += c
			}
			e.B[f*r.Push+j] = r.B[j]
		}
	}
	return e
}

// Toeplitz reports whether the representation is a pure sliding
// convolution: pop == push == 1 and a single row (then frequency
// translation applies directly).
func (r *Rep) Toeplitz() bool {
	return r.Pop == 1 && r.Push == 1 && len(r.A) == 1
}

// Taps returns the convolution kernel for a Toeplitz representation.
func (r *Rep) Taps() []float64 {
	return append([]float64(nil), r.A[0]...)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// CombinePipeline collapses two pipelined linear filters F then G into a
// single linear representation. The combined filter re-derives any
// intermediate history G peeks (beyond what F produces per firing) from its
// own wider input peek window, so the result is stateless.
func CombinePipeline(f, g *Rep) (*Rep, error) {
	if f.Push == 0 || g.Pop == 0 {
		return nil, fmt.Errorf("linear: cannot combine across a zero-rate channel")
	}
	u := lcm(f.Push, g.Pop)
	mF0 := u / f.Push // F firings whose output G consumes per combined firing
	mG := u / g.Pop
	e2 := g.Peek - g.Pop

	// Intermediates needed: [0, u+e2). F firing k produces intermediates
	// [k*push, (k+1)*push) from inputs [k*pop, k*pop+peek).
	nInter := u + e2
	mF := (nInter + f.Push - 1) / f.Push // firings to cover the window
	peek := (mF-1)*f.Pop + f.Peek
	pop := mF0 * f.Pop
	push := mG * g.Push
	if peek < pop {
		peek = pop
	}

	// M maps the combined input window to the intermediate window.
	M := make([][]float64, nInter)
	bM := make([]float64, nInter)
	for m := 0; m < nInter; m++ {
		M[m] = make([]float64, peek)
		k := m / f.Push
		row := m % f.Push
		for i, c := range f.A[row] {
			M[m][k*f.Pop+i] += c
		}
		bM[m] = f.B[row]
	}

	out := NewRep(peek, pop, push)
	for gf := 0; gf < mG; gf++ {
		for r2 := 0; r2 < g.Push; r2++ {
			j := gf*g.Push + r2
			acc := g.B[r2]
			dst := out.A[j]
			for i, c := range g.A[r2] {
				if c == 0 {
					continue
				}
				inter := gf*g.Pop + i
				acc += c * bM[inter]
				for col, mc := range M[inter] {
					if mc != 0 {
						dst[col] += c * mc
					}
				}
			}
			out.B[j] = acc
		}
	}
	return out, nil
}
