package linear

import (
	"fmt"

	"streamit/internal/ir"
)

// CombineSplitJoin collapses a split-join whose children are all linear
// into a single linear representation. Supported splitters: duplicate and
// weighted round-robin; the joiner must be a weighted round-robin.
//
// The combined filter executes L joiner cycles per firing, where L is
// chosen so every child's firing count is integral, and interleaves the
// children's outputs per the joiner weights. Children's input coefficient
// columns are mapped through the splitter's routing.
func CombineSplitJoin(split ir.SJSpec, children []*Rep, join ir.SJSpec) (*Rep, error) {
	n := len(children)
	if n == 0 {
		return nil, fmt.Errorf("linear: empty splitjoin")
	}
	if join.Kind != ir.SJRoundRobin || len(join.Weights) != n {
		return nil, fmt.Errorf("linear: splitjoin combination requires a round-robin joiner")
	}
	if split.Kind == ir.SJNull {
		return nil, fmt.Errorf("linear: null splitters are not combinable")
	}
	if split.Kind == ir.SJRoundRobin && len(split.Weights) != n {
		return nil, fmt.Errorf("linear: splitter weights/children mismatch")
	}

	// Choose L joiner cycles so child i fires n_i = L*w_i/push_i integrally.
	L := 1
	for i, c := range children {
		w := join.Weights[i]
		if w == 0 || c.Push == 0 {
			return nil, fmt.Errorf("linear: zero-rate branch %d not combinable", i)
		}
		// L*w must be divisible by push.
		need := c.Push / gcd(c.Push, w)
		L = lcm(L, need)
	}
	fires := make([]int, n)
	for i, c := range children {
		fires[i] = L * join.Weights[i] / c.Push
	}

	// Input consumption: child i consumes fires[i]*pop_i items of its own
	// input stream. Map child-stream indices to combined-input indices.
	var popComb int
	childIndex := func(child, m int) int { return m } // duplicate: identity
	switch split.Kind {
	case ir.SJDuplicate:
		popComb = fires[0] * children[0].Pop
		for i, c := range children {
			if fires[i]*c.Pop != popComb {
				return nil, fmt.Errorf("linear: duplicate splitjoin branches consume at different rates (%d vs %d)", fires[i]*c.Pop, popComb)
			}
		}
	case ir.SJRoundRobin:
		tot := 0
		for _, w := range split.Weights {
			tot += w
		}
		// Child i's m-th input item is at global position
		// (m/v_i)*tot + start_i + (m%v_i).
		starts := make([]int, n)
		acc := 0
		for i, w := range split.Weights {
			starts[i] = acc
			acc += w
		}
		popComb = 0
		for i, c := range children {
			consumed := fires[i] * c.Pop
			v := split.Weights[i]
			if v == 0 {
				if consumed != 0 {
					return nil, fmt.Errorf("linear: branch %d consumes with zero splitter weight", i)
				}
				continue
			}
			if consumed%v != 0 {
				return nil, fmt.Errorf("linear: branch %d consumption %d not a multiple of splitter weight %d", i, consumed, v)
			}
			blocks := consumed / v
			if blocks*tot > popComb {
				popComb = blocks * tot
			}
		}
		// All branches must consume the same number of splitter cycles for
		// the combined filter to be rate-consistent.
		for i, c := range children {
			v := split.Weights[i]
			if v == 0 {
				continue
			}
			if (fires[i]*c.Pop/v)*tot != popComb {
				return nil, fmt.Errorf("linear: splitjoin branch rates are inconsistent")
			}
		}
		splitWeights := append([]int(nil), split.Weights...)
		childIndex = func(child, m int) int {
			v := splitWeights[child]
			return (m/v)*tot + starts[child] + (m % v)
		}
	default:
		return nil, fmt.Errorf("linear: unsupported splitter kind %v", split.Kind)
	}

	// Peek: max over children of the combined-input index of their last
	// peeked item, plus one.
	peekComb := popComb
	for i, c := range children {
		last := (fires[i]-1)*c.Pop + c.Peek - 1
		if c.Peek == 0 || fires[i] == 0 {
			continue
		}
		gi := childIndex(i, last) + 1
		if gi > peekComb {
			peekComb = gi
		}
	}

	wTot := 0
	for _, w := range join.Weights {
		wTot += w
	}
	pushComb := L * wTot
	out := NewRep(peekComb, popComb, pushComb)

	// Interleave child outputs: joiner cycle c takes w_i items from child i
	// in order.
	for cyc := 0; cyc < L; cyc++ {
		off := cyc * wTot
		for i, c := range children {
			w := join.Weights[i]
			for k := 0; k < w; k++ {
				childOut := cyc*w + k
				fire := childOut / c.Push
				row := childOut % c.Push
				dstRow := off + startOffset(join.Weights, i) + k
				dst := out.A[dstRow]
				for col, coeff := range c.A[row] {
					if coeff == 0 {
						continue
					}
					gi := childIndex(i, fire*c.Pop+col)
					if gi >= peekComb {
						return nil, fmt.Errorf("linear: internal error: child %d peek maps past combined window", i)
					}
					dst[gi] += coeff
				}
				out.B[dstRow] = c.B[row]
			}
		}
	}
	return out, nil
}

func startOffset(weights []int, i int) int {
	s := 0
	for k := 0; k < i; k++ {
		s += weights[k]
	}
	return s
}
