package linear

import (
	"fmt"
	"math"

	"streamit/internal/fft"
	"streamit/internal/wfunc"
)

// unrollLimit bounds the straight-line expansion of one output row; rows
// with more nonzeros fall back to a CSR loop.
const unrollLimit = 1024

// ToKernel generates an IL kernel that executes the linear representation
// directly. Rows with few nonzeros are emitted as straight-line code with
// literal coefficients (exactly what the paper's compiler produces for a
// collapsed linear region — no loads for coefficients, no multiplies by
// zero); very wide rows fall back to a sparse CSR loop.
func ToKernel(name string, r *Rep) *wfunc.Kernel {
	b := wfunc.NewKernel(name, r.Peek, r.Pop, r.Push)

	// Shared CSR tables, only materialized if some row needs the loop.
	var colIdx, coef []float64
	type csrRow struct{ j, lo, hi int }
	var loops []csrRow
	var unrolled [][]wfunc.Stmt

	for j, row := range r.A {
		nnz := 0
		for _, c := range row {
			if c != 0 {
				nnz++
			}
		}
		if nnz <= unrollLimit {
			// out = B[j] + c1*peek(i1) + c2*peek(i2) + ...
			expr := wfunc.Expr(wfunc.C(r.B[j]))
			first := r.B[j] == 0
			for i, c := range row {
				if c == 0 {
					continue
				}
				term := wfunc.Expr(wfunc.MulX(wfunc.PeekE(i), wfunc.C(c)))
				if c == 1 {
					term = wfunc.PeekE(i)
				}
				if first {
					expr = term
					first = false
				} else {
					expr = wfunc.AddX(expr, term)
				}
			}
			unrolled = append(unrolled, []wfunc.Stmt{wfunc.Push1(expr)})
		} else {
			lo := len(colIdx)
			for i, c := range row {
				if c != 0 {
					colIdx = append(colIdx, float64(i))
					coef = append(coef, c)
				}
			}
			loops = append(loops, csrRow{j: j, lo: lo, hi: len(colIdx)})
			unrolled = append(unrolled, nil)
		}
	}

	var ciArr, cfArr int
	if len(colIdx) > 0 {
		ciArr = b.FieldArray("colIdx", len(colIdx), colIdx...)
		cfArr = b.FieldArray("coef", len(coef), coef...)
	}
	t := b.Local("t")
	sum := b.Local("sum")

	var body []wfunc.Stmt
	li := 0
	for j := 0; j < r.Push; j++ {
		if unrolled[j] != nil {
			body = append(body, unrolled[j]...)
			continue
		}
		row := loops[li]
		li++
		body = append(body,
			wfunc.Set(sum, wfunc.C(r.B[j])),
			wfunc.ForUp(t, wfunc.Ci(row.lo), wfunc.Ci(row.hi),
				wfunc.Set(sum, wfunc.AddX(sum,
					wfunc.MulX(wfunc.PeekX(wfunc.FIdx(ciArr, t)), wfunc.FIdx(cfArr, t))))),
			wfunc.Push1(sum),
		)
	}
	body = append(body, wfunc.ForUp(t, wfunc.Ci(0), wfunc.Ci(r.Pop), wfunc.Pop1()))
	b.WorkBody(body...)
	return b.Build()
}

// FreqKernel generates an IL kernel that executes a Toeplitz (sliding
// convolution) representation in the frequency domain via overlap-save:
// per firing it peeks block+taps-1 items, pops and pushes block items,
// computing an FFT of size N = nextpow2(block+taps-1), a pointwise multiply
// with the (precomputed, conjugated) tap spectrum, and an inverse FFT.
//
// The whole computation is IL — the same interpreter executes both the
// original and the optimized program, so measured speedups are algorithmic.
func FreqKernel(name string, taps []float64, block int) (*wfunc.Kernel, error) {
	if len(taps) == 0 || block <= 0 {
		return nil, fmt.Errorf("linear: FreqKernel requires taps and a positive block")
	}
	window := block + len(taps) - 1
	n := fft.NextPow2(window)

	// Precompute the conjugated tap spectrum, bit-reversal table, and
	// twiddle tables; they are baked into field initializers.
	hF := make([]complex128, n)
	for i, v := range taps {
		hF[i] = complex(v, 0)
	}
	if err := fft.Forward(hF); err != nil {
		return nil, err
	}
	hRe := make([]float64, n)
	hIm := make([]float64, n)
	for i, v := range hF {
		hRe[i] = real(v)
		hIm[i] = -imag(v) // store conj(H)
	}
	brev := make([]float64, n)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		brev[i] = float64(j)
	}
	cosT := make([]float64, n)
	sinT := make([]float64, n)
	for k := 0; k < n; k++ {
		cosT[k] = math.Cos(2 * math.Pi * float64(k) / float64(n))
		sinT[k] = math.Sin(2 * math.Pi * float64(k) / float64(n))
	}

	b := wfunc.NewKernel(name, window, block, block)
	fHRe := b.FieldArray("hRe", n, hRe...)
	fHIm := b.FieldArray("hIm", n, hIm...)
	fBrev := b.FieldArray("brev", n, brev...)
	fCos := b.FieldArray("cosT", n, cosT...)
	fSin := b.FieldArray("sinT", n, sinT...)
	re := b.LocalArray("re", n)
	im := b.LocalArray("im", n)

	i := b.Local("i")
	jj := b.Local("jj")
	size := b.Local("size")
	half := b.Local("half")
	step := b.Local("step")
	start := b.Local("start")
	k := b.Local("k")
	tw := b.Local("tw")
	wr := b.Local("wr")
	wi := b.Local("wi")
	vr := b.Local("vr")
	vi := b.Local("vi")
	tr := b.Local("tr")
	ai := b.Local("ai")
	bi := b.Local("bi")

	// genFFT emits an in-place FFT over re/im with twiddle sign dir
	// (-1 forward, +1 inverse).
	genFFT := func(dir float64) []wfunc.Stmt {
		return []wfunc.Stmt{
			// Bit-reversal permutation.
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
				wfunc.Set(jj, wfunc.FIdx(fBrev, i)),
				wfunc.IfS(wfunc.Bin(wfunc.Lt, i, jj),
					wfunc.Set(tr, wfunc.LIdx(re, i)),
					wfunc.SetLIdx(re, i, wfunc.LIdx(re, jj)),
					wfunc.SetLIdx(re, jj, tr),
					wfunc.Set(tr, wfunc.LIdx(im, i)),
					wfunc.SetLIdx(im, i, wfunc.LIdx(im, jj)),
					wfunc.SetLIdx(im, jj, tr),
				),
			),
			// Butterfly stages.
			wfunc.Set(size, wfunc.Ci(2)),
			&wfunc.While{C: wfunc.Bin(wfunc.Le, size, wfunc.Ci(n)), Body: []wfunc.Stmt{
				wfunc.Set(half, wfunc.DivX(size, wfunc.C(2))),
				wfunc.Set(step, wfunc.DivX(wfunc.Ci(n), size)),
				wfunc.Set(start, wfunc.Ci(0)),
				&wfunc.While{C: wfunc.Bin(wfunc.Lt, start, wfunc.Ci(n)), Body: []wfunc.Stmt{
					wfunc.ForUp(k, wfunc.Ci(0), half,
						wfunc.Set(tw, wfunc.MulX(k, step)),
						wfunc.Set(wr, wfunc.FIdx(fCos, tw)),
						wfunc.Set(wi, wfunc.MulX(wfunc.C(dir), wfunc.FIdx(fSin, tw))),
						wfunc.Set(ai, wfunc.AddX(start, k)),
						wfunc.Set(bi, wfunc.AddX(ai, half)),
						wfunc.Set(vr, wfunc.SubX(wfunc.MulX(wfunc.LIdx(re, bi), wr), wfunc.MulX(wfunc.LIdx(im, bi), wi))),
						wfunc.Set(vi, wfunc.AddX(wfunc.MulX(wfunc.LIdx(re, bi), wi), wfunc.MulX(wfunc.LIdx(im, bi), wr))),
						wfunc.SetLIdx(re, bi, wfunc.SubX(wfunc.LIdx(re, ai), vr)),
						wfunc.SetLIdx(im, bi, wfunc.SubX(wfunc.LIdx(im, ai), vi)),
						wfunc.SetLIdx(re, ai, wfunc.AddX(wfunc.LIdx(re, ai), vr)),
						wfunc.SetLIdx(im, ai, wfunc.AddX(wfunc.LIdx(im, ai), vi)),
					),
					wfunc.Set(start, wfunc.AddX(start, size)),
				}},
				wfunc.Set(size, wfunc.MulX(size, wfunc.C(2))),
			}},
		}
	}

	var body []wfunc.Stmt
	// Load the input window (local arrays are zeroed each firing).
	body = append(body,
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(window),
			wfunc.SetLIdx(re, i, wfunc.PeekX(i))),
	)
	body = append(body, genFFT(-1)...)
	// Pointwise multiply by conj(H) (already conjugated in the tables).
	body = append(body,
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
			wfunc.Set(tr, wfunc.SubX(
				wfunc.MulX(wfunc.LIdx(re, i), wfunc.FIdx(fHRe, i)),
				wfunc.MulX(wfunc.LIdx(im, i), wfunc.FIdx(fHIm, i)))),
			wfunc.SetLIdx(im, i, wfunc.AddX(
				wfunc.MulX(wfunc.LIdx(re, i), wfunc.FIdx(fHIm, i)),
				wfunc.MulX(wfunc.LIdx(im, i), wfunc.FIdx(fHRe, i)))),
			wfunc.SetLIdx(re, i, tr),
		),
	)
	body = append(body, genFFT(1)...)
	// Emit block outputs scaled by 1/N, then consume block inputs.
	body = append(body,
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(block),
			wfunc.Push1(wfunc.MulX(wfunc.LIdx(re, i), wfunc.C(1/float64(n))))),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(block), wfunc.Pop1()),
	)
	b.WorkBody(body...)
	return b.Build(), nil
}

// FreqCostPerOutput estimates interpreter cycles per output item for a
// frequency-domain kernel with the given taps and block size. Work
// estimation cannot see through the FFT's data-dependent while loops, so
// the optimizer uses this closed form: two FFTs of size N (~5N log2 N
// butterfly operations, each a handful of IL steps) plus the pointwise
// multiply and data movement, divided by block outputs.
func FreqCostPerOutput(taps, block int) float64 {
	n := fft.NextPow2(block + taps - 1)
	logN := math.Log2(float64(n))
	butterflies := float64(n) / 2 * logN
	// Calibrated against the tree-walking interpreter: one butterfly costs
	// about eight direct FIR taps (measured ~400ns vs ~55ns per tap), i.e.
	// ~110 abstract cycles against the ~14 of a CSR tap. Two FFTs plus the
	// bit-reverse, pointwise-multiply, load and scale stages.
	total := 2*butterflies*110 + float64(n)*80
	return total / float64(block)
}

// DirectCostPerOutput estimates interpreter cycles per output for the
// unrolled matrix kernel of r: ~7 abstract cycles per nonzero coefficient
// (straight-line multiply-add with literal coefficients) plus per-row
// overhead, on the same calibration scale as FreqCostPerOutput.
func DirectCostPerOutput(r *Rep) float64 {
	return 7*float64(r.NonZeros())/float64(r.Push) + 6
}
