package linear

import "testing"

// BenchmarkExtract measures linear extraction on a 64-tap FIR.
func BenchmarkExtract(b *testing.B) {
	w := make([]float64, 64)
	for i := range w {
		w[i] = float64(i)
	}
	k := firKernel("FIR", w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCombinePipeline measures matrix combination of two FIRs.
func BenchmarkCombinePipeline(b *testing.B) {
	mk := func(n int) *Rep {
		r := NewRep(n, 1, 1)
		for i := range r.A[0] {
			r.A[0][i] = float64(i + 1)
		}
		return r
	}
	f, g := mk(64), mk(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CombinePipeline(f, g); err != nil {
			b.Fatal(err)
		}
	}
}
