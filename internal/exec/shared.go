package exec

import (
	"fmt"

	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/sched"
	"streamit/internal/vm"
	"streamit/internal/wfunc"
)

// Shared is the immutable compiled-artifact bundle for one graph and
// schedule: work functions compiled to VM bytecode once per kernel,
// post-init field-state prototypes, messaging constraints derived once,
// and ring-buffer geometry sized from the schedule's observed high-water
// marks. Many engines are stamped out of one Shared — construction clones
// small state vectors and allocates tapes, nothing else — which is what
// lets a multi-tenant server hold thousands of concurrent sessions of the
// same program (see internal/serve). A Shared is safe for concurrent use
// by any number of goroutines; the engines it produces are each
// single-owner, like engines always were.
type Shared struct {
	G   *ir.Graph
	Sch *sched.Schedule
	// Backend is the work-function substrate every engine from this Shared
	// uses (the VM programs are compiled at bundle build time).
	Backend Backend

	// progs[n.ID] is the node's compiled VM program; nil when the node is
	// not a filter, the backend is the interpreter, or compilation fell
	// back. Programs are immutable and shared by every engine's Machines.
	progs []*vm.Program
	// protos[n.ID] is the filter's field state after its init function ran
	// (init is deterministic IL, so it runs once here and per-engine
	// construction clones the result instead of re-interpreting it).
	protos []*wfunc.State
	// sends[n.ID] marks filters whose work function sends teleport
	// messages; only those engines' nodes carry a messenger.
	sends []bool
	// ringCap[e.ID] is the initial tape ring capacity in items: the
	// schedule's buffer high-water mark (rings still grow on demand, so
	// dynamic messaging schedules that run ahead stay correct).
	ringCap []int

	constraints []constraint
	dynamic     bool
}

// NewShared compiles the reusable execution artifacts for g under the
// given backend. The work is everything expensive about engine
// construction: VM compilation per kernel, init-function interpretation,
// and constraint derivation.
func NewShared(g *ir.Graph, s *sched.Schedule, backend Backend) (*Shared, error) {
	sh := &Shared{
		G:       g,
		Sch:     s,
		Backend: backend,
		progs:   make([]*vm.Program, len(g.Nodes)),
		protos:  make([]*wfunc.State, len(g.Nodes)),
		sends:   make([]bool, len(g.Nodes)),
		ringCap: make([]int, len(g.Edges)),
	}
	for _, edge := range g.Edges {
		c := s.BufCap[edge.ID]
		if n := len(edge.Initial); n > c {
			c = n
		}
		sh.ringCap[edge.ID] = c
	}
	// Fission replicas and fused partitions can share one kernel object;
	// compile each distinct work function once.
	compiled := map[*wfunc.Func]*vm.Program{}
	for _, n := range g.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		k := n.Filter.Kernel
		st := k.NewState()
		// Init always runs on the interpreter: it fires once per program,
		// so compilation would cost more than it saves.
		if k.Init != nil {
			initEnv := wfunc.NewEnv(k.Init)
			initEnv.State = st
			if err := wfunc.Exec(k.Init, initEnv); err != nil {
				return nil, fmt.Errorf("init of %s: %w", n.Name, err)
			}
		}
		sh.protos[n.ID] = st
		sh.sends[n.ID] = wfunc.SendsMessages(k.Work)
		if backend == BackendVM && n.Filter.WorkFn == nil {
			if p, ok := compiled[k.Work]; ok {
				sh.progs[n.ID] = p
			} else if p, err := vm.Compile(k.Work); err == nil {
				compiled[k.Work] = p
				sh.progs[n.ID] = p
			} else {
				// Uncompilable work functions fall back to the interpreter;
				// remember the failure so replicas do not retry.
				compiled[k.Work] = nil
			}
		}
	}
	if err := sh.deriveConstraints(); err != nil {
		return nil, err
	}
	sh.dynamic = len(sh.constraints) > 0
	return sh, nil
}

// Fingerprint hashes the bundle's graph and schedule structure; it equals
// the fingerprint of every engine built from this Shared.
func (sh *Shared) Fingerprint() uint64 { return graphFingerprint(sh.G, sh.Sch) }

// NewEngine stamps out one engine instance from the shared artifacts.
// Construction is allocation-light: tape rings at their schedule high-water
// marks, cloned field states, and one VM frame per filter. opts.Backend is
// ignored — the bundle's backend applies (its programs were compiled for
// it).
func (sh *Shared) NewEngine(opts Options) (*Engine, error) {
	opts.Backend = sh.Backend
	e := &Engine{
		G:           sh.G,
		Sch:         sh.Sch,
		Backend:     sh.Backend,
		chans:       make([]*channel, len(sh.G.Edges)),
		nodes:       make([]*nodeRT, len(sh.G.Nodes)),
		pending:     make([][]*message, len(sh.G.Nodes)),
		constraints: sh.constraints,
		dynamic:     sh.dynamic,
	}
	for _, edge := range sh.G.Edges {
		ch := newChannel(sh.ringCap[edge.ID])
		for _, v := range edge.Initial {
			ch.Push(v)
		}
		e.chans[edge.ID] = ch
	}
	for _, n := range sh.G.Nodes {
		rt := &nodeRT{node: n}
		if n.Kind == ir.NodeFilter {
			k := n.Filter.Kernel
			rt.state = sh.protos[n.ID].Clone()
			rt.runner = newWorkRunnerCompiled(k, rt.state, sh.progs[n.ID])
			if sh.sends[n.ID] {
				rt.send = &sender{e: e, node: n}
			}
			name := n.Name
			rt.print = func(v float64) {
				if e.Printer != nil {
					e.Printer(name, v)
				}
			}
		}
		e.nodes[n.ID] = rt
	}
	sup, err := newSupervisor(sh.G, opts)
	if err != nil {
		return nil, err
	}
	e.sup = sup
	if opts.Profile || opts.Trace != nil {
		var prof *obs.Profiler
		if opts.Profile {
			prof = obs.NewProfiler(nodeNames(sh.G))
		}
		e.adoptObs(prof, opts.Trace)
	}
	return e, nil
}

// deriveConstraints statically scans kernels for Send statements and
// combines them with portal registrations and MAX_LATENCY directives to
// produce the schedule constraints of the paper's operational semantics.
func (sh *Shared) deriveConstraints() error {
	cs, err := deriveConstraints(sh.G)
	if err != nil {
		return err
	}
	sh.constraints = cs
	return nil
}

// deriveConstraints is the graph-level derivation, shared between the
// sequential/dynamic engine (via Shared) and the pipelined mapped engine.
func deriveConstraints(g *ir.Graph) ([]constraint, error) {
	var out []constraint
	// Map portal ID -> receiver nodes.
	recvs := map[int][]*ir.Node{}
	for _, p := range g.Portals {
		for _, f := range p.Receivers {
			n := g.FilterNode[f]
			if n == nil {
				return nil, fmt.Errorf("portal %s receiver %s not in graph", p.Name, f.Kernel.Name)
			}
			recvs[p.ID] = append(recvs[p.ID], n)
		}
	}
	for _, n := range g.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		sends := collectSends(n.Filter.Kernel.Work)
		for _, s := range sends {
			if s.BestEffort {
				continue
			}
			for _, r := range recvs[s.Portal] {
				if r == n {
					return nil, fmt.Errorf("filter %s sends messages to itself", n.Name)
				}
				up := g.Downstream(r, n)
				down := g.Downstream(n, r)
				if !up && !down {
					return nil, fmt.Errorf("message from %s to %s: receivers running in parallel with the sender are not supported", n.Name, r.Name)
				}
				out = append(out, constraint{
					sender: n, receiver: r, latency: s.MinLatency, upstream: up,
				})
			}
		}
	}
	for _, lc := range g.Constraints {
		a := g.FilterNode[lc.Upstream]
		b := g.FilterNode[lc.Downstream]
		if a == nil || b == nil {
			return nil, fmt.Errorf("MAX_LATENCY references a filter outside the graph")
		}
		if !g.Downstream(a, b) {
			return nil, fmt.Errorf("MAX_LATENCY(%s, %s): first filter must be upstream of second", a.Name, b.Name)
		}
		// MAX_LATENCY(A,B,n) acts as a message from B to upstream A.
		out = append(out, constraint{
			sender: b, receiver: a, latency: lc.Latency, upstream: true,
		})
	}
	return out, nil
}

// OverrideWork replaces the named filter's work function for this engine
// instance only. The override fires in place of the kernel (and of any
// native WorkFn); it must respect the kernel's static rates — pop exactly
// its pop count and push exactly its push count per firing — or the run
// surfaces a structured *ExecError. This is the per-session input hook of
// the streaming server: a served session's source filter is overridden to
// push items fed over the wire, while every other session keeps the
// program's own source. Call before Run.
func (e *Engine) OverrideWork(name string, fn func(in, out wfunc.Tape)) error {
	n := e.filterByName(name)
	if n == nil {
		return fmt.Errorf("exec: override target %q is not a filter in the graph", name)
	}
	e.nodes[n.ID].override = fn
	return nil
}

// TapSink wraps the named filter's input tape so fn observes every item
// the filter pops, in firing order. Filters with no input tape (sources)
// are rejected. Taps compose with profiling wrappers and survive
// checkpoint restores. Under non-fail recovery policies a rolled-back
// firing's pops are observed again on replay; servers that tap output do
// not enable those policies. Call before Run.
func (e *Engine) TapSink(name string, fn func(float64)) error {
	n := e.filterByName(name)
	if n == nil {
		return fmt.Errorf("exec: tap target %q is not a filter in the graph", name)
	}
	edge := n.InEdge()
	if edge == nil {
		return fmt.Errorf("exec: tap target %q has no input tape", name)
	}
	rt := e.nodes[n.ID]
	rt.inT = &tapTape{e: e, edge: edge.ID, inner: rt.inT, fn: fn}
	return nil
}

// filterByName resolves a flattened instance name to its filter node.
func (e *Engine) filterByName(name string) *ir.Node {
	for _, n := range e.G.Nodes {
		if n.Kind == ir.NodeFilter && n.Name == name {
			return n
		}
	}
	return nil
}

// tapTape forwards to the filter's effective input tape (a profiling
// wrapper when set, else the engine's current channel — resolved per
// operation because Restore replaces channel objects) and reports every
// popped value.
type tapTape struct {
	e     *Engine
	edge  int
	inner wfunc.Tape // next wrapper down, nil = the channel itself
	fn    func(float64)
}

func (t *tapTape) tape() wfunc.Tape {
	if t.inner != nil {
		return t.inner
	}
	return t.e.chans[t.edge]
}

func (t *tapTape) Peek(i int) float64 { return t.tape().Peek(i) }

func (t *tapTape) Pop() float64 {
	v := t.tape().Pop()
	t.fn(v)
	return v
}

func (t *tapTape) Push(v float64) { t.tape().Push(v) }
