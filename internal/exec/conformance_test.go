package exec

import (
	"fmt"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/sched"
)

// confIters is the number of steady iterations every engine executes in
// the conformance suite. Small enough to keep the 12-app sweep fast, large
// enough that schedule-order differences between engines would surface.
const confIters = 4

// counts is the engine-independent view of one node's profile: how often
// it fired and how many items crossed its tapes. Peeks are deliberately
// excluded — they are a read pattern, not dataflow, and the demand-driven
// engine legitimately peeks a different number of times than the static
// engines.
type counts struct {
	Firings, Pushed, Popped int64
}

// profileCounts aggregates a profiler snapshot by node name.
func profileCounts(p *obs.Profiler) map[string]counts {
	out := map[string]counts{}
	for _, fp := range p.Snapshot() {
		c := out[fp.Name]
		c.Firings += fp.Firings
		c.Pushed += fp.Pushed
		c.Popped += fp.Popped
		out[fp.Name] = c
	}
	return out
}

// flattenApp builds a fresh graph + schedule for one suite app. Filters
// are single-appearance, so every engine construction needs its own copy;
// flattening is deterministic, so node names and IDs agree across copies.
func flattenApp(t *testing.T, app apps.App) (*ir.Graph, *sched.Schedule) {
	t.Helper()
	g, err := ir.Flatten(app.Build())
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return g, s
}

// dynChanCap sizes the demand-driven engine's channels so a full steady
// iteration can buffer without blocking: twice the static bound plus any
// initial items, floored at the default.
func dynChanCap(g *ir.Graph, s *sched.Schedule) int {
	cap := 4096
	for _, e := range g.Edges {
		if need := 2*s.BufCap[e.ID] + len(e.Initial); need > cap {
			cap = need
		}
	}
	return cap
}

// diffCounts compares two aggregated profiles and reports every node whose
// counters differ.
func diffCounts(t *testing.T, engine string, want, got map[string]counts) {
	t.Helper()
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: node %s missing from profile", engine, name)
			continue
		}
		if g != w {
			t.Errorf("%s: node %s: firings/pushed/popped = %d/%d/%d, want %d/%d/%d",
				engine, name, g.Firings, g.Pushed, g.Popped, w.Firings, w.Pushed, w.Popped)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: unexpected node %s in profile", engine, name)
		}
	}
}

// TestEngineConformance runs every suite benchmark on all three engines
// and both work-function backends, asserting that the profiler observes
// identical firing counts and identical push/pop totals per node. The
// sequential VM run is the reference; any divergence means an engine
// reordered, dropped, or duplicated work.
func TestEngineConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweep is not short")
	}
	for _, app := range apps.Suite() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			// Reference: sequential engine on the VM backend.
			g, s := flattenApp(t, app)
			ref, err := NewFromGraphOpts(g, s, Options{Profile: true})
			if err != nil {
				t.Fatalf("sequential/vm: %v", err)
			}
			if err := ref.Run(confIters); err != nil {
				t.Fatalf("sequential/vm run: %v", err)
			}
			want := profileCounts(ref.Profile())
			if len(want) == 0 {
				t.Fatal("reference profile is empty")
			}

			for _, backend := range []Backend{BackendVM, BackendInterp} {
				backend := backend
				bname := "vm"
				if backend == BackendInterp {
					bname = "interp"
				}

				if backend != BackendVM { // vm sequential is the reference itself
					label := fmt.Sprintf("sequential/%s", bname)
					g, s := flattenApp(t, app)
					e, err := NewFromGraphOpts(g, s, Options{Backend: backend, Profile: true})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if err := e.Run(confIters); err != nil {
						t.Fatalf("%s run: %v", label, err)
					}
					diffCounts(t, label, want, profileCounts(e.Profile()))
				}

				{
					label := fmt.Sprintf("parallel/%s", bname)
					g, s := flattenApp(t, app)
					pe, err := NewParallelOpts(g, s, Options{Backend: backend, Profile: true})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if err := pe.Run(confIters); err != nil {
						t.Fatalf("%s run: %v", label, err)
					}
					diffCounts(t, label, want, profileCounts(pe.Profile()))
				}

				{
					label := fmt.Sprintf("dynamic/%s", bname)
					g, s := flattenApp(t, app)
					d, err := NewDynamicOpts(g, Options{Backend: backend, Profile: true})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					d.ChanCap = dynChanCap(g, s)
					if err := d.RunBudget(ScheduleBudget(s, confIters)); err != nil {
						t.Fatalf("%s run: %v", label, err)
					}
					diffCounts(t, label, want, profileCounts(d.Profile()))
				}
			}
		})
	}
}

// TestScheduleBudget checks the budget arithmetic against the schedule.
func TestScheduleBudget(t *testing.T) {
	g, s := flattenApp(t, apps.Suite()[0])
	b := ScheduleBudget(s, 3)
	if len(b) != len(g.Nodes) {
		t.Fatalf("budget length %d, want %d", len(b), len(g.Nodes))
	}
	for _, n := range g.Nodes {
		want := int64(s.InitReps[n.ID]) + 3*int64(s.Reps[n.ID])
		if b[n.ID] != want {
			t.Errorf("node %s: budget %d, want %d", n.Name, b[n.ID], want)
		}
	}
}
