package exec

import (
	"fmt"
	"math/rand"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// Test utilities shared by the parallel cross-check tests.

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func letter(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

// rampFilter emits 0, 1, 2, ... (stateful source).
func rampFilter(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 0, 0, 1)
	n := b.Field("n", 0)
	b.WorkBody(wfunc.Push1(n), wfunc.SetF(n, wfunc.AddX(n, wfunc.C(1))))
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeFloat}
}

// wfuncKernel builds a deterministic kernel with the given rates: each
// output is a scaled sum over the peek window plus the output index.
func wfuncKernel(name string, peek, pop, push int, scale float64) *wfunc.Kernel {
	b := wfunc.NewKernel(name, peek, pop, push)
	i := b.Local("i")
	s := b.Local("s")
	var body []wfunc.Stmt
	if peek > 0 {
		body = append(body, wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(peek),
			wfunc.Set(s, wfunc.AddX(s, wfunc.PeekX(i)))))
	}
	for j := 0; j < push; j++ {
		body = append(body, wfunc.Push1(wfunc.AddX(wfunc.MulX(s, wfunc.C(scale)), wfunc.Ci(j))))
	}
	for j := 0; j < pop; j++ {
		body = append(body, wfunc.Pop1())
	}
	b.WorkBody(body...)
	return b.Build()
}
