package exec

import (
	"errors"
	"strings"
	"testing"
	"time"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
)

// stallObserver attaches a trace recorder whose OnEvent hook captures
// fault-injection instants. The hook fires synchronously on the engine
// goroutine the moment the injector delivers the stall, so the tests below
// assert on an observed event instead of guessing with sleeps — the
// watchdog interval then only bounds the run's duration, it is not load-
// bearing for correctness of the assertion.
func stallObserver() (*obs.Recorder, chan obs.Event) {
	rec := obs.NewRecorder()
	faultsCh := make(chan obs.Event, 16)
	rec.OnEvent(func(ev obs.Event) {
		if ev.Cat == "fault" {
			select {
			case faultsCh <- ev:
			default:
			}
		}
	})
	return rec, faultsCh
}

// expectStall asserts that the injector delivered a stall to the named
// filter (the hook buffered it during the run; no waiting is involved).
func expectStall(t *testing.T, faultsCh chan obs.Event, filter string) {
	t.Helper()
	select {
	case ev := <-faultsCh:
		if ev.Name != "fault: stall" {
			t.Fatalf("observed %q, want fault: stall", ev.Name)
		}
		if faults.BaseName(ev.Detail) != filter {
			t.Fatalf("stall delivered to %q, want %s", ev.Detail, filter)
		}
	default:
		t.Fatalf("no fault event observed: the stall was never injected")
	}
}

// TestParallelStallWatchdog: an injected stall wedges one goroutine; the
// watchdog detects frozen progress and reports the blocked filters. The
// obs event hook proves the stall was actually delivered, so a
// *DeadlockError here can only mean the watchdog saw the wedge.
func TestParallelStallWatchdog(t *testing.T) {
	g, s, _ := faultPipeline(t, gainFilter("Double", 2))
	rec, faultsCh := stallObserver()
	pe, err := NewParallelOpts(g, s, Options{
		Faults:   mustPlan(t, "stall:Double@5"),
		Watchdog: 150 * time.Millisecond,
		Trace:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = pe.Run(64)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	expectStall(t, faultsCh, "Double")
	if de.Engine != "parallel" {
		t.Fatalf("engine = %q, want parallel", de.Engine)
	}
	stalled := false
	for _, fs := range de.Blocked {
		if faults.BaseName(fs.Name) == "Double" && fs.State == stStalled {
			stalled = true
		}
	}
	if !stalled {
		t.Fatalf("report %v does not show Double stalled", err)
	}
	if !strings.Contains(err.Error(), "Double") {
		t.Fatalf("error %q does not name the stalled filter", err)
	}
}

// TestDynamicStallWatchdog: same detection on the dynamic engine.
func TestDynamicStallWatchdog(t *testing.T) {
	g, _, _ := faultPipeline(t, gainFilter("Double", 2))
	rec, faultsCh := stallObserver()
	d, err := NewDynamicOpts(g, Options{
		Faults:   mustPlan(t, "stall:Double@5"),
		Watchdog: 150 * time.Millisecond,
		Trace:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = d.Run(64)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	expectStall(t, faultsCh, "Double")
	if de.Engine != "dynamic" {
		t.Fatalf("engine = %q, want dynamic", de.Engine)
	}
	if !strings.Contains(err.Error(), "Double") {
		t.Fatalf("error %q does not name the stalled filter", err)
	}
}

// TestDynamicBufferDeadlockCycle: a rate-mismatched graph (duplicate split
// feeding a weighted joiner) wedges once the bounded channels fill — the
// classic dynamic-rate deadlock the watchdog exists for. The report traces
// the wait-cycle through splitter, branch, and joiner.
func TestDynamicBufferDeadlockCycle(t *testing.T) {
	snk, _ := SliceSink("snk")
	sj := ir.SJ("sj", ir.Duplicate(), ir.RoundRobin(8, 1),
		gainFilter("a", 1), gainFilter("b", 1))
	prog := &ir.Program{Name: "dl", Top: ir.Pipe("main", rampFilter("Src"), sj, snk)}
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamicOpts(g, Options{Watchdog: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d.ChanCap = 4
	err = d.Run(1000)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(de.Blocked) == 0 {
		t.Fatal("deadlock report lists no blocked nodes")
	}
	if len(de.Cycle) < 2 {
		t.Fatalf("expected a traced wait-cycle, got %v", de.Cycle)
	}
	if !strings.Contains(err.Error(), "wait-cycle") {
		t.Fatalf("error %q does not include the wait-cycle", err)
	}
}

// TestWatchdogDisabled: a negative interval turns detection off; the run
// aborts via the normal error path instead (other node finishing is not
// possible here, so use a panic fault to end the run).
func TestWatchdogDisabled(t *testing.T) {
	g, s, _ := faultPipeline(t, gainFilter("Double", 2))
	pe, err := NewParallelOpts(g, s, Options{
		Faults:   mustPlan(t, "panic:Double@3"),
		Watchdog: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = pe.Run(16)
	var de *DeadlockError
	if errors.As(err, &de) {
		t.Fatalf("watchdog fired despite being disabled: %v", err)
	}
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want the filter's *ExecError", err)
	}
}

// TestWaitCycleTrace: unit test of the cycle tracer.
func TestWaitCycleTrace(t *testing.T) {
	names := map[int]string{1: "A", 2: "B", 3: "C", 4: "D"}
	// A -> B -> C -> B is a cycle (B C B); D -> A joins the chain.
	cycle := traceWaitCycle(map[int]int{1: 2, 2: 3, 3: 2, 4: 1}, names)
	if len(cycle) != 3 || cycle[0] != "B" || cycle[1] != "C" || cycle[2] != "B" {
		t.Fatalf("cycle = %v, want [B C B]", cycle)
	}
	// No cycle: the longest chain is reported.
	chain := traceWaitCycle(map[int]int{1: 2, 2: 3}, names)
	if len(chain) < 2 || chain[0] != "A" {
		t.Fatalf("chain = %v, want the A -> B -> C chain", chain)
	}
}
