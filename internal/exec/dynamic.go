package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// DynamicEngine executes stream graphs with data-dependent rates — the
// paper's stated future work ("applications such as compression that have
// dynamically varying flow rates"). No steady-state schedule exists for
// such programs, so execution is fully demand/data-driven: every node runs
// in its own goroutine, channels carry single items, Pop blocks until data
// arrives, and Peek transparently reads ahead. Static-rate filters run
// unchanged; filters built with KernelBuilder.Dynamic (or declared with
// `pop *` / `push *` in the language) may pop and push freely.
//
// Execution stops once the graph's sinks have consumed the requested
// number of items. Teleport messaging is not supported (its delivery
// semantics assume static rates, as the paper notes).
type DynamicEngine struct {
	G *ir.Graph
	// Backend is the work-function execution substrate (bytecode VM by
	// default).
	Backend Backend
	// ChanCap is the per-edge buffering in items (default 4096). Dynamic
	// graphs have no static buffer bound; a graph that needs more buffering
	// than this to make progress wedges with every producer blocked — the
	// watchdog then aborts the run with a *DeadlockError naming the blocked
	// wait-cycle. Raise ChanCap for bursty programs.
	ChanCap int

	// Watchdog is the stall-detection interval: 0 selects
	// DefaultWatchdogInterval, negative disables detection. Dynamic graphs
	// have no static deadlock-freedom guarantee, so the watchdog is the
	// engine's only diagnosis for insufficient buffering or rate mismatch.
	Watchdog time.Duration

	sup *supervisor

	// prof and rec are the observability hooks; nil when disabled.
	prof *obs.Profiler
	rec  *obs.Recorder

	nodes  []*dynNodeRT
	popped int64

	// Per-run supervision state.
	progress int64
	statuses []*nodeStatus
}

type dynNodeRT struct {
	node  *ir.Node
	state *wfunc.State
	// fired counts completed firings (the fault injector's index).
	fired int64
}

// stopSignal unwinds a node goroutine during shutdown.
type stopSignal struct{}

// NewDynamic prepares a dynamic engine for a flattened graph (no schedule
// is needed or computed) on the default (VM) backend.
func NewDynamic(g *ir.Graph) (*DynamicEngine, error) {
	return NewDynamicBackend(g, BackendVM)
}

// NewDynamicBackend is NewDynamic with an explicit work-function backend.
func NewDynamicBackend(g *ir.Graph, backend Backend) (*DynamicEngine, error) {
	return NewDynamicOpts(g, Options{Backend: backend})
}

// NewDynamicOpts is the full-option constructor. Fault injection and the
// watchdog are supported; recovery policies are not — a dynamic filter's
// pushes go straight to live channels where consumers may already have
// seen them, so there is no rollback point. Use the sequential or parallel
// engine for retry/skip/restart semantics.
func NewDynamicOpts(g *ir.Graph, opts Options) (*DynamicEngine, error) {
	if len(g.Portals) > 0 || len(g.Constraints) > 0 {
		return nil, fmt.Errorf("exec: dynamic-rate execution does not support teleport messaging")
	}
	if len(g.Sinks()) == 0 {
		return nil, fmt.Errorf("exec: dynamic execution needs at least one sink to count output")
	}
	if opts.OnError.Active() {
		return nil, fmt.Errorf("exec: the dynamic engine cannot roll back firings (pushes reach live channels); recovery policies require the sequential or parallel engine")
	}
	d := &DynamicEngine{G: g, Backend: opts.Backend, ChanCap: 4096, Watchdog: opts.Watchdog, rec: opts.Trace}
	if opts.Profile {
		d.prof = obs.NewProfiler(nodeNames(g))
	}
	if d.rec != nil {
		for _, n := range g.Nodes {
			if n.Kind == ir.NodeFilter {
				d.rec.Lane(n.ID, n.Name)
			}
		}
	}
	sup, err := newSupervisor(g, opts)
	if err != nil {
		return nil, err
	}
	d.sup = sup
	d.nodes = make([]*dynNodeRT, len(g.Nodes))
	for _, n := range g.Nodes {
		rt := &dynNodeRT{node: n}
		if n.Kind == ir.NodeFilter {
			k := n.Filter.Kernel
			rt.state = k.NewState()
			if k.Init != nil {
				env := wfunc.NewEnv(k.Init)
				env.State = rt.state
				if err := wfunc.Exec(k.Init, env); err != nil {
					return nil, fmt.Errorf("init of %s: %w", n.Name, err)
				}
			}
		}
		d.nodes[n.ID] = rt
	}
	return d, nil
}

// SinkItems returns the total items consumed by sinks in the last Run.
func (d *DynamicEngine) SinkItems() int64 { return atomic.LoadInt64(&d.popped) }

// SupervisionReport renders per-filter fault counters (empty when the
// engine is unsupervised or nothing was injected).
func (d *DynamicEngine) SupervisionReport() string { return d.sup.Report() }

// Degraded returns per-filter fault counters (nil when unsupervised).
func (d *DynamicEngine) Degraded() map[string]DegradedStats {
	if d.sup == nil {
		return nil
	}
	return d.sup.Stats()
}

// Run executes until the sinks have consumed at least sinkItems items.
func (d *DynamicEngine) Run(sinkItems int64) error {
	return d.run(sinkItems, nil)
}

// ScheduleBudget returns per-node firing budgets equal to a static
// schedule's init phase plus iters steady iterations — the firing counts
// the sequential and parallel engines produce for the same run length.
func ScheduleBudget(s *sched.Schedule, iters int) []int64 {
	budget := make([]int64, len(s.Reps))
	for i := range budget {
		budget[i] = int64(s.InitReps[i]) + int64(iters)*int64(s.Reps[i])
	}
	return budget
}

// RunBudget executes until every node has fired exactly budget[nodeID]
// times (see ScheduleBudget). Unlike Run, which stops on a sink-item count
// and leaves upstream firing counts nondeterministic, a budgeted run is
// fully deterministic in its observable counters — this is what lets the
// cross-engine conformance suite compare the demand-driven engine against
// the schedule-driven ones. The budget must be consistent with the
// graph's rates (a schedule-derived budget always is); an infeasible
// budget wedges and is reported by the watchdog.
func (d *DynamicEngine) RunBudget(budget []int64) error {
	if len(budget) != len(d.G.Nodes) {
		return fmt.Errorf("exec: budget for %d nodes, graph has %d", len(budget), len(d.G.Nodes))
	}
	return d.run(0, budget)
}

func (d *DynamicEngine) run(sinkItems int64, budget []int64) error {
	done := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(done) }) }
	atomic.StoreInt64(&d.popped, 0)
	atomic.StoreInt64(&d.progress, 0)
	d.statuses = make([]*nodeStatus, len(d.G.Nodes))
	for _, n := range d.G.Nodes {
		d.statuses[n.ID] = newNodeStatus(n.Name)
	}
	var wd *watchdog
	if d.Watchdog >= 0 {
		interval := d.Watchdog
		if interval == 0 {
			interval = DefaultWatchdogInterval
		}
		wd = newWatchdog("dynamic", interval, &d.progress, d.statuses, stop)
	}

	chans := make([]chan float64, len(d.G.Edges))
	for _, e := range d.G.Edges {
		capacity := d.ChanCap
		if len(e.Initial) >= capacity {
			capacity = len(e.Initial) + d.ChanCap
		}
		ch := make(chan float64, capacity)
		for _, v := range e.Initial {
			ch <- v
		}
		chans[e.ID] = ch
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(d.G.Nodes))
	for _, rt := range d.nodes {
		wg.Add(1)
		go func(rt *dynNodeRT) {
			defer wg.Done()
			defer d.statuses[rt.node.ID].set(stDone, "", 0, -1)
			defer func() {
				if r := recover(); r != nil {
					if _, isStop := r.(stopSignal); !isStop {
						errs <- asExecError(rt.node.Name, rt.fired, r)
						stop()
					}
				}
			}()
			d.runDynNode(rt, chans, done, sinkItems, stop, budget)
		}(rt)
	}
	wg.Wait()
	if wd != nil {
		wd.close()
		if derr := wd.error(); derr != nil {
			return derr
		}
	}
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	if budget == nil {
		if got := atomic.LoadInt64(&d.popped); got < sinkItems {
			return fmt.Errorf("exec: dynamic run stopped after %d of %d sink items", got, sinkItems)
		}
	}
	return nil
}

func (d *DynamicEngine) runDynNode(rt *dynNodeRT, chans []chan float64, done chan struct{}, target int64, stop func(), budget []int64) {
	n := rt.node
	st := d.statuses[n.ID]
	var pst *obs.FilterStats
	if d.prof != nil {
		pst = d.prof.At(n.ID)
	}
	// Build tapes.
	ins := make([]*dynIn, len(n.In))
	for p, e := range n.In {
		if e == nil {
			continue
		}
		ins[p] = &dynIn{
			ch: chans[e.ID], done: done,
			st: st, progress: &d.progress, edge: e.String(), srcID: e.Src.ID,
			prof: pst,
		}
		if n.IsSink() && budget == nil {
			ins[p].count = &d.popped
			ins[p].target = target
			ins[p].stop = stop
		}
	}
	outs := make([]*dynOut, len(n.Out))
	for p, e := range n.Out {
		if e == nil {
			continue
		}
		outs[p] = &dynOut{
			ch: chans[e.ID], done: done,
			st: st, progress: &d.progress, edge: e.String(), dstID: e.Dst.ID,
			prof: pst,
		}
	}

	var runner *workRunner
	if n.Kind == ir.NodeFilter && n.Filter.WorkFn == nil {
		runner = newWorkRunner(n.Filter.Kernel, rt.state, d.Backend)
	}

	// Filter tapes, wrapped in counting adapters when profiling.
	var fIn, fOut wfunc.Tape
	if n.Kind == ir.NodeFilter {
		if len(ins) > 0 && ins[0] != nil {
			fIn = ins[0]
			if pst != nil {
				fIn = &obsTape{inner: ins[0], st: pst}
			}
		}
		if len(outs) > 0 && outs[0] != nil {
			fOut = outs[0]
			if pst != nil {
				fOut = &obsTape{inner: outs[0], st: pst, lenFn: outs[0].Len}
			}
		}
	}

	for budget == nil || rt.fired < budget[n.ID] {
		select {
		case <-done:
			panic(stopSignal{})
		default:
		}
		var start time.Time
		var stall0 int64
		if pst != nil || d.rec != nil {
			start = time.Now()
			if pst != nil {
				stall0 = pst.StallNanos()
			}
		}
		switch n.Kind {
		case ir.NodeFilter:
			tIn, tOut := fIn, fOut
			if d.sup != nil {
				if fault, ok := d.sup.take(n.Name, rt.fired); ok {
					traceFault(d.rec, n.ID, n.Name, fault.Kind.String())
					switch fault.Kind {
					case faults.Panic:
						panic(&ExecError{Filter: n.Name, Op: "injected panic", Iteration: rt.fired})
					case faults.Stall:
						// Wedge like a hung kernel until the watchdog (or
						// another node's completion) aborts the run.
						st.set(stStalled, "", 0, -1)
						<-done
						panic(stopSignal{})
					case faults.Corrupt:
						tOut = corruptOut(tOut)
					}
				}
			}
			if n.Filter.WorkFn != nil {
				n.Filter.WorkFn(tIn, tOut, rt.state)
			} else if err := runner.run(tIn, tOut, nil, nil); err != nil {
				panic(&ExecError{Filter: n.Name, Op: "work", Iteration: rt.fired, Err: err})
			}
		case ir.NodeSplitter:
			if n.SJ.Kind == ir.SJDuplicate {
				v := ins[0].Pop()
				for p := range outs {
					if outs[p] != nil {
						outs[p].Push(v)
					}
				}
			} else {
				for p := range outs {
					for k := 0; k < n.SJ.Weights[p]; k++ {
						v := ins[0].Pop()
						if outs[p] != nil {
							outs[p].Push(v)
						}
					}
				}
			}
		case ir.NodeJoiner:
			for p := range ins {
				if ins[p] == nil {
					continue
				}
				for k := 0; k < n.SJ.Weights[p]; k++ {
					outs[0].Push(ins[p].Pop())
				}
			}
		}
		rt.fired++
		if pst != nil || d.rec != nil {
			d.noteFiring(n, pst, start, stall0)
		}
	}
}

// noteFiring credits one dynamic-engine firing. Demand-driven pops and
// pushes can block mid-firing, so the blocked time (accumulated by the
// tapes into StallNanos during this firing) is subtracted from the work
// measurement; the trace slice keeps the full elapsed span, which is what
// the timeline viewer should show.
func (d *DynamicEngine) noteFiring(n *ir.Node, pst *obs.FilterStats, start time.Time, stall0 int64) {
	elapsed := time.Since(start)
	if pst != nil {
		pst.AddFiring()
		if n.Kind == ir.NodeFilter {
			work := elapsed - time.Duration(pst.StallNanos()-stall0)
			if work < 0 {
				work = 0
			}
			pst.AddWork(work)
		} else {
			profileSJ(pst, n)
		}
	}
	if d.rec != nil && n.Kind == ir.NodeFilter {
		end := d.rec.Stamp()
		d.rec.Slice(n.ID, n.Name, "firing", end-elapsed, end)
	}
}

// dynIn is a blocking input tape: Pop and Peek receive from the channel on
// demand, buffering look-ahead locally.
type dynIn struct {
	ch     chan float64
	done   chan struct{}
	buf    []float64
	head   int
	count  *int64 // when set (sinks), pops count toward the run target
	target int64
	stop   func()

	// Watchdog instrumentation: wait state while blocked, progress on
	// every item received.
	st       *nodeStatus
	progress *int64
	edge     string
	srcID    int
	// prof accumulates stall time while blocked (nil unless profiling).
	prof *obs.FilterStats
}

func (t *dynIn) fill(n int) {
	for len(t.buf)-t.head < n {
		if t.head > 1024 && t.head >= len(t.buf)/2 {
			t.buf = append([]float64(nil), t.buf[t.head:]...)
			t.head = 0
		}
		// Fast path: data already queued.
		select {
		case v := <-t.ch:
			t.buf = append(t.buf, v)
			if t.progress != nil {
				atomic.AddInt64(t.progress, 1)
			}
			continue
		default:
		}
		// Blocking path: record who we wait on for the watchdog.
		if t.st != nil {
			t.st.set(stWaitRecv, t.edge, len(t.buf)-t.head, t.srcID)
		}
		var t0 time.Time
		if t.prof != nil {
			t0 = time.Now()
		}
		select {
		case v := <-t.ch:
			t.buf = append(t.buf, v)
			if t.progress != nil {
				atomic.AddInt64(t.progress, 1)
			}
			if t.prof != nil {
				t.prof.AddStall(time.Since(t0))
			}
			if t.st != nil {
				t.st.set(stRunning, "", 0, -1)
			}
		case <-t.done:
			panic(stopSignal{})
		}
	}
}

// Peek implements wfunc.Tape with transparent read-ahead.
func (t *dynIn) Peek(i int) float64 {
	t.fill(i + 1)
	return t.buf[t.head+i]
}

// Pop implements wfunc.Tape.
func (t *dynIn) Pop() float64 {
	t.fill(1)
	v := t.buf[t.head]
	t.head++
	if t.count != nil {
		if atomic.AddInt64(t.count, 1) >= t.target {
			t.stop()
		}
	}
	return v
}

// Push is invalid on an input tape.
func (t *dynIn) Push(float64) {
	panic(tapeFault{op: "push", detail: "push on input tape"})
}

// dynOut is a blocking output tape.
type dynOut struct {
	ch   chan float64
	done chan struct{}

	// Watchdog instrumentation, as in dynIn.
	st       *nodeStatus
	progress *int64
	edge     string
	dstID    int
	// prof accumulates stall time while blocked (nil unless profiling).
	prof *obs.FilterStats
}

// Len reports the items currently queued on the output channel (the
// profiler's occupancy sample).
func (t *dynOut) Len() int { return len(t.ch) }

// Peek is invalid on an output tape.
func (t *dynOut) Peek(int) float64 {
	panic(tapeFault{op: "peek", detail: "peek on output tape"})
}

// Pop is invalid on an output tape.
func (t *dynOut) Pop() float64 {
	panic(tapeFault{op: "pop", detail: "pop on output tape"})
}

// Push implements wfunc.Tape, blocking when the channel is full.
func (t *dynOut) Push(v float64) {
	// Fast path: channel has room.
	select {
	case t.ch <- v:
		if t.progress != nil {
			atomic.AddInt64(t.progress, 1)
		}
		return
	default:
	}
	// Blocking path: record who we wait on for the watchdog.
	if t.st != nil {
		t.st.set(stWaitSend, t.edge, len(t.ch), t.dstID)
	}
	var t0 time.Time
	if t.prof != nil {
		t0 = time.Now()
	}
	select {
	case t.ch <- v:
		if t.progress != nil {
			atomic.AddInt64(t.progress, 1)
		}
		if t.prof != nil {
			t.prof.AddStall(time.Since(t0))
		}
		if t.st != nil {
			t.st.set(stRunning, "", 0, -1)
		}
	case <-t.done:
		panic(stopSignal{})
	}
}
