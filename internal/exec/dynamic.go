package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// DynamicEngine executes stream graphs with data-dependent rates — the
// paper's stated future work ("applications such as compression that have
// dynamically varying flow rates"). No steady-state schedule exists for
// such programs, so execution is fully demand/data-driven: every node runs
// in its own goroutine, channels carry single items, Pop blocks until data
// arrives, and Peek transparently reads ahead. Static-rate filters run
// unchanged; filters built with KernelBuilder.Dynamic (or declared with
// `pop *` / `push *` in the language) may pop and push freely.
//
// Execution stops once the graph's sinks have consumed the requested
// number of items. Teleport messaging is not supported (its delivery
// semantics assume static rates, as the paper notes).
type DynamicEngine struct {
	G *ir.Graph
	// Backend is the work-function execution substrate (bytecode VM by
	// default).
	Backend Backend
	// ChanCap is the per-edge buffering in items (default 4096). Dynamic
	// graphs have no static buffer bound; a graph that needs more buffering
	// than this to make progress will report deadlock via timeout-free
	// blocking — raise ChanCap for bursty programs.
	ChanCap int

	nodes  []*dynNodeRT
	popped int64
}

type dynNodeRT struct {
	node  *ir.Node
	state *wfunc.State
}

// stopSignal unwinds a node goroutine during shutdown.
type stopSignal struct{}

// NewDynamic prepares a dynamic engine for a flattened graph (no schedule
// is needed or computed) on the default (VM) backend.
func NewDynamic(g *ir.Graph) (*DynamicEngine, error) {
	return NewDynamicBackend(g, BackendVM)
}

// NewDynamicBackend is NewDynamic with an explicit work-function backend.
func NewDynamicBackend(g *ir.Graph, backend Backend) (*DynamicEngine, error) {
	if len(g.Portals) > 0 || len(g.Constraints) > 0 {
		return nil, fmt.Errorf("exec: dynamic-rate execution does not support teleport messaging")
	}
	if len(g.Sinks()) == 0 {
		return nil, fmt.Errorf("exec: dynamic execution needs at least one sink to count output")
	}
	d := &DynamicEngine{G: g, Backend: backend, ChanCap: 4096}
	d.nodes = make([]*dynNodeRT, len(g.Nodes))
	for _, n := range g.Nodes {
		rt := &dynNodeRT{node: n}
		if n.Kind == ir.NodeFilter {
			k := n.Filter.Kernel
			rt.state = k.NewState()
			if k.Init != nil {
				env := wfunc.NewEnv(k.Init)
				env.State = rt.state
				if err := wfunc.Exec(k.Init, env); err != nil {
					return nil, fmt.Errorf("init of %s: %w", n.Name, err)
				}
			}
		}
		d.nodes[n.ID] = rt
	}
	return d, nil
}

// SinkItems returns the total items consumed by sinks in the last Run.
func (d *DynamicEngine) SinkItems() int64 { return atomic.LoadInt64(&d.popped) }

// Run executes until the sinks have consumed at least sinkItems items.
func (d *DynamicEngine) Run(sinkItems int64) error {
	done := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(done) }) }
	atomic.StoreInt64(&d.popped, 0)

	chans := make([]chan float64, len(d.G.Edges))
	for _, e := range d.G.Edges {
		capacity := d.ChanCap
		if len(e.Initial) >= capacity {
			capacity = len(e.Initial) + d.ChanCap
		}
		ch := make(chan float64, capacity)
		for _, v := range e.Initial {
			ch <- v
		}
		chans[e.ID] = ch
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(d.G.Nodes))
	for _, rt := range d.nodes {
		wg.Add(1)
		go func(rt *dynNodeRT) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, isStop := r.(stopSignal); !isStop {
						errs <- fmt.Errorf("node %s: %v", rt.node.Name, r)
						stop()
					}
				}
			}()
			d.runDynNode(rt, chans, done, sinkItems, stop)
		}(rt)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	if got := atomic.LoadInt64(&d.popped); got < sinkItems {
		return fmt.Errorf("exec: dynamic run stopped after %d of %d sink items", got, sinkItems)
	}
	return nil
}

func (d *DynamicEngine) runDynNode(rt *dynNodeRT, chans []chan float64, done chan struct{}, target int64, stop func()) {
	n := rt.node
	// Build tapes.
	ins := make([]*dynIn, len(n.In))
	for p, e := range n.In {
		if e == nil {
			continue
		}
		ins[p] = &dynIn{ch: chans[e.ID], done: done}
		if n.IsSink() {
			ins[p].count = &d.popped
			ins[p].target = target
			ins[p].stop = stop
		}
	}
	outs := make([]*dynOut, len(n.Out))
	for p, e := range n.Out {
		if e == nil {
			continue
		}
		outs[p] = &dynOut{ch: chans[e.ID], done: done}
	}

	var runner *workRunner
	if n.Kind == ir.NodeFilter && n.Filter.WorkFn == nil {
		runner = newWorkRunner(n.Filter.Kernel, rt.state, d.Backend)
	}

	for {
		select {
		case <-done:
			panic(stopSignal{})
		default:
		}
		switch n.Kind {
		case ir.NodeFilter:
			var tIn wfunc.Tape
			var tOut wfunc.Tape
			if len(ins) > 0 && ins[0] != nil {
				tIn = ins[0]
			}
			if len(outs) > 0 && outs[0] != nil {
				tOut = outs[0]
			}
			if n.Filter.WorkFn != nil {
				n.Filter.WorkFn(tIn, tOut, rt.state)
			} else if err := runner.run(tIn, tOut, nil, nil); err != nil {
				panic(err)
			}
		case ir.NodeSplitter:
			if n.SJ.Kind == ir.SJDuplicate {
				v := ins[0].Pop()
				for p := range outs {
					if outs[p] != nil {
						outs[p].Push(v)
					}
				}
			} else {
				for p := range outs {
					for k := 0; k < n.SJ.Weights[p]; k++ {
						v := ins[0].Pop()
						if outs[p] != nil {
							outs[p].Push(v)
						}
					}
				}
			}
		case ir.NodeJoiner:
			for p := range ins {
				if ins[p] == nil {
					continue
				}
				for k := 0; k < n.SJ.Weights[p]; k++ {
					outs[0].Push(ins[p].Pop())
				}
			}
		}
	}
}

// dynIn is a blocking input tape: Pop and Peek receive from the channel on
// demand, buffering look-ahead locally.
type dynIn struct {
	ch     chan float64
	done   chan struct{}
	buf    []float64
	head   int
	count  *int64 // when set (sinks), pops count toward the run target
	target int64
	stop   func()
}

func (t *dynIn) fill(n int) {
	for len(t.buf)-t.head < n {
		if t.head > 1024 && t.head >= len(t.buf)/2 {
			t.buf = append([]float64(nil), t.buf[t.head:]...)
			t.head = 0
		}
		select {
		case v := <-t.ch:
			t.buf = append(t.buf, v)
		case <-t.done:
			panic(stopSignal{})
		}
	}
}

// Peek implements wfunc.Tape with transparent read-ahead.
func (t *dynIn) Peek(i int) float64 {
	t.fill(i + 1)
	return t.buf[t.head+i]
}

// Pop implements wfunc.Tape.
func (t *dynIn) Pop() float64 {
	t.fill(1)
	v := t.buf[t.head]
	t.head++
	if t.count != nil {
		if atomic.AddInt64(t.count, 1) >= t.target {
			t.stop()
		}
	}
	return v
}

// Push is invalid on an input tape.
func (t *dynIn) Push(float64) { panic("push on input tape") }

// dynOut is a blocking output tape.
type dynOut struct {
	ch   chan float64
	done chan struct{}
}

// Peek is invalid on an output tape.
func (t *dynOut) Peek(int) float64 { panic("peek on output tape") }

// Pop is invalid on an output tape.
func (t *dynOut) Pop() float64 { panic("pop on output tape") }

// Push implements wfunc.Tape, blocking when the channel is full.
func (t *dynOut) Push(v float64) {
	select {
	case t.ch <- v:
	case <-t.done:
		panic(stopSignal{})
	}
}
