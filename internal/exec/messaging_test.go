package exec

import (
	"testing"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// ampFilter is a gain filter with a setGain teleport handler.
func ampFilter(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	g := b.Field("gain", 1)
	arg := b.Local("arg")
	b.WorkBody(wfunc.Push1(wfunc.MulX(wfunc.PopE(), g)))
	b.Handler("setGain", 1, wfunc.SetF(g, arg))
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// triggerSender passes values through; when it sees trigger, it sends
// setGain(2) to the portal with the given latency.
func triggerSender(name string, portal int, trigger float64, latency int, bestEffort bool) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	v := b.Local("v")
	b.WorkBody(
		wfunc.Set(v, wfunc.PopE()),
		wfunc.Push1(v),
		wfunc.IfS(wfunc.Bin(wfunc.Eq, v, wfunc.C(trigger)),
			&wfunc.Send{Portal: portal, Handler: "setGain", Args: []wfunc.Expr{wfunc.C(2)},
				MinLatency: latency, MaxLatency: latency, BestEffort: bestEffort}),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

func TestDownstreamMessageTiming(t *testing.T) {
	// Sender upstream of receiver, latency 1: the gain change takes effect
	// exactly after the item that triggered it (the paper's guarantee: the
	// message arrives immediately before the first receiver invocation
	// whose output is affected by the trigger item).
	prog := &ir.Program{Name: "p"}
	portal := prog.NewPortal("gainPortal")
	amp := ampFilter("amp")
	portal.Register(amp)
	src := SliceSource("src", []float64{1, 2, 3, 42, 5, 6, 7, 8})
	snk, got := SliceSink("snk")
	prog.Top = ir.Pipe("main", src, triggerSender("trig", portal.ID, 42, 1, false), amp, snk)

	out, err := RunCollect(prog, 8, got)
	if err != nil {
		t.Fatal(err)
	}
	// Items 1,2,3,42 at gain 1; everything after at gain 2.
	want := []float64{1, 2, 3, 42, 10, 12, 14, 16}
	for i := range want {
		if i < len(out) && out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestDownstreamMessageHigherLatency(t *testing.T) {
	// Latency 3: two more sender outputs pass at the old gain.
	prog := &ir.Program{Name: "p"}
	portal := prog.NewPortal("gainPortal")
	amp := ampFilter("amp")
	portal.Register(amp)
	src := SliceSource("src", []float64{1, 2, 42, 4, 5, 6, 7, 8})
	snk, got := SliceSink("snk")
	prog.Top = ir.Pipe("main", src, triggerSender("trig", portal.ID, 42, 3, false), amp, snk)

	out, err := RunCollect(prog, 8, got)
	if err != nil {
		t.Fatal(err)
	}
	// Trigger is item 3 (s=3); latency 3 -> delivery before the item after
	// s + push*(λ-1) = 5: items 1..5 old gain, 6.. new gain.
	want := []float64{1, 2, 42, 4, 5, 12, 14, 16}
	for i := range want {
		if i < len(out) && out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestUpstreamMessageTiming(t *testing.T) {
	// Receiver upstream of sender with latency 2: the receiver processes
	// exactly 2 more items past the sender's wavefront before the change.
	prog := &ir.Program{Name: "p"}
	portal := prog.NewPortal("volPortal")
	vol := ampFilter("vol")
	portal.Register(vol)
	src := SliceSource("src", []float64{1, 2, 3, 7, 5, 6, 4, 8})
	snk, got := SliceSink("snk")
	prog.Top = ir.Pipe("main", src, vol, triggerSender("mon", portal.ID, 7, 2, false), snk)

	out, err := RunCollect(prog, 8, got)
	if err != nil {
		t.Fatal(err)
	}
	// mon sees 7 as its 4th item (s=4); target n(O_vol) = s + 2 = 6: vol's
	// items 1..6 pass at gain 1, from the 7th onward gain 2.
	want := []float64{1, 2, 3, 7, 5, 6, 8, 16}
	for i := range want {
		if i < len(out) && out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestBestEffortMessage(t *testing.T) {
	prog := &ir.Program{Name: "p"}
	portal := prog.NewPortal("gainPortal")
	amp := ampFilter("amp")
	portal.Register(amp)
	src := SliceSource("src", []float64{42, 2, 3, 4})
	snk, got := SliceSink("snk")
	prog.Top = ir.Pipe("main", src, triggerSender("trig", portal.ID, 42, 0, true), amp, snk)

	out, err := RunCollect(prog, 4, got)
	if err != nil {
		t.Fatal(err)
	}
	// Best-effort delivery happens before the receiver's next firing; with
	// the data-driven schedule the gain flips somewhere early. All outputs
	// must be either v or 2v, and once doubled, stay doubled.
	doubled := false
	for i, v := range out {
		base := []float64{42, 2, 3, 4}[i%4]
		switch v {
		case base:
			if doubled {
				t.Errorf("out[%d] reverted to old gain", i)
			}
		case 2 * base:
			doubled = true
		default:
			t.Errorf("out[%d] = %v, not %v or %v", i, v, base, 2*base)
		}
	}
	if !doubled {
		t.Error("gain change never took effect")
	}
}

func TestMaxLatencyConstraintBoundsRunahead(t *testing.T) {
	// MAX_LATENCY(A, snk, 3): A may run at most 3 sink-invocations ahead.
	prog := &ir.Program{Name: "p"}
	src := SliceSource("src", []float64{1})
	a := ampFilter("A")
	snk, _ := SliceSink("snk")
	prog.Top = ir.Pipe("main", src, a, snk)
	prog.Constraints = []ir.LatencyConstraint{{Upstream: a, Downstream: snk, Latency: 3}}

	e, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !e.dynamic {
		t.Fatal("MAX_LATENCY should force dynamic scheduling")
	}
	if err := e.RunInit(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if err := e.RunSteady(1); err != nil {
			t.Fatal(err)
		}
		aNode := e.G.FilterNode[a]
		edge := aNode.OutEdge()
		if e.ChannelLen(edge) > 3 {
			t.Fatalf("A ran %d items ahead of the sink; MAX_LATENCY allows 3", e.ChannelLen(edge))
		}
	}
}

func TestSelfMessageRejected(t *testing.T) {
	prog := &ir.Program{Name: "p"}
	portal := prog.NewPortal("selfPortal")
	self := triggerSender("self", portal.ID, 1, 1, false)
	// Give the sender a handler so registration is otherwise valid.
	selfAmp := ampFilter("selfamp")
	_ = selfAmp
	portal.Register(self)
	src := SliceSource("src", []float64{1})
	snk, _ := SliceSink("snk")
	prog.Top = ir.Pipe("main", src, self, snk)
	if _, err := New(prog); err == nil {
		t.Fatal("expected self-messaging to be rejected")
	}
}

func TestMissingHandlerRejected(t *testing.T) {
	prog := &ir.Program{Name: "p"}
	portal := prog.NewPortal("p0")
	// Receiver has no setGain handler.
	plain := func() *ir.Filter {
		b := wfunc.NewKernel("plain", 1, 1, 1)
		b.WorkBody(wfunc.Push1(wfunc.PopE()))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	portal.Register(plain)
	src := SliceSource("src", []float64{42})
	snk, _ := SliceSink("snk")
	prog.Top = ir.Pipe("main", src, triggerSender("trig", portal.ID, 42, 1, false), plain, snk)
	e, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1); err == nil {
		t.Fatal("expected missing-handler error at send time")
	}
}

// TestHandlerSendsMessage: the paper permits message handlers to send
// further messages (appendix restriction 4). A relay filter's handler
// forwards the gain change to a second portal.
func TestHandlerSendsMessage(t *testing.T) {
	prog := &ir.Program{Name: "p"}
	relayPortal := prog.NewPortal("relay")
	finalPortal := prog.NewPortal("final")

	// The relay: passes data through; its handler re-sends best-effort to
	// the final portal.
	relayB := wfunc.NewKernel("relay", 1, 1, 1)
	g := relayB.Local("g")
	relayB.WorkBody(wfunc.Push1(wfunc.PopE()))
	relayB.Handler("forward", 1,
		&wfunc.Send{Portal: finalPortal.ID, Handler: "setGain",
			Args: []wfunc.Expr{g}, BestEffort: true})
	relay := &ir.Filter{Kernel: relayB.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	relayPortal.Register(relay)

	amp := ampFilter("finalAmp")
	finalPortal.Register(amp)

	src := SliceSource("src", []float64{42, 2, 3, 4})
	snk, got := SliceSink("snk")
	prog.Top = ir.Pipe("main",
		src,
		triggerToPortal("trig", relayPortal.ID, 42, "forward"),
		relay,
		amp,
		snk,
	)
	out, err := RunCollect(prog, 12, got)
	if err != nil {
		t.Fatal(err)
	}
	// Eventually the amp doubles values: the relayed message arrived.
	doubled := false
	for i, v := range out {
		base := []float64{42, 2, 3, 4}[i%4]
		if v == 2*base {
			doubled = true
		}
	}
	if !doubled {
		t.Error("relayed message never reached the final receiver")
	}
}

// triggerToPortal sends a named handler message (best effort) when it sees
// the trigger value.
func triggerToPortal(name string, portal int, trigger float64, handler string) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	v := b.Local("v")
	b.WorkBody(
		wfunc.Set(v, wfunc.PopE()),
		wfunc.Push1(v),
		wfunc.IfS(wfunc.Bin(wfunc.Eq, v, wfunc.C(trigger)),
			&wfunc.Send{Portal: portal, Handler: handler,
				Args: []wfunc.Expr{wfunc.C(2)}, BestEffort: true}),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// TestMultipleReceiversBroadcast: a portal with two registered receivers
// delivers to both (the appendix's broadcast semantics).
func TestMultipleReceiversBroadcast(t *testing.T) {
	prog := &ir.Program{Name: "p"}
	portal := prog.NewPortal("bcast")
	amp1 := ampFilter("amp1")
	amp2 := ampFilter("amp2")
	portal.Register(amp1)
	portal.Register(amp2)
	src := SliceSource("src", []float64{42, 1, 1, 1})
	snk, got := SliceSink("snk")
	prog.Top = ir.Pipe("main", src, triggerSender("trig", portal.ID, 42, 1, false), amp1, amp2, snk)
	out, err := RunCollect(prog, 12, got)
	if err != nil {
		t.Fatal(err)
	}
	// After delivery both receivers double: 4x overall.
	quadrupled := false
	for i, v := range out {
		base := []float64{42, 1, 1, 1}[i%4]
		if v == 4*base {
			quadrupled = true
		}
	}
	if !quadrupled {
		t.Error("broadcast did not reach both receivers")
	}
}
