package exec

import (
	"fmt"

	"streamit/internal/vm"
	"streamit/internal/wfunc"
)

// Backend selects the work-function execution substrate shared by all
// three engines (sequential, parallel, dynamic). The zero value is the
// bytecode VM, so engines default to the fast path.
type Backend int

const (
	// BackendVM compiles each work function to internal/vm bytecode and
	// falls back to the tree-walking interpreter for any function the
	// compiler rejects. Output is bit-identical to the interpreter.
	BackendVM Backend = iota
	// BackendInterp forces the tree-walking interpreter everywhere.
	BackendInterp
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendVM:
		return "vm"
	case BackendInterp:
		return "interp"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseBackend maps the user-facing names (as used by the -backend flag)
// onto Backend values.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "vm":
		return BackendVM, nil
	case "interp", "interpreter":
		return BackendInterp, nil
	}
	return 0, fmt.Errorf("exec: unknown backend %q (want \"vm\" or \"interp\")", s)
}

// workRunner executes one filter instance's work function on the selected
// backend. It owns the per-instance frame (interpreter Env or VM Machine)
// so firing allocates nothing.
type workRunner struct {
	work *wfunc.Func
	env  *wfunc.Env  // interpreter frame; nil when the VM path is active
	mach *vm.Machine // VM frame; nil when the interpreter path is active
}

// newWorkRunner builds a runner for k bound to the instance state st.
// Under BackendVM an uncompilable work function silently falls back to
// the interpreter — the compiler covers the whole IL today, so this is
// future-proofing for constructs it may not cover yet.
func newWorkRunner(k *wfunc.Kernel, st *wfunc.State, backend Backend) *workRunner {
	if backend == BackendVM {
		if p, err := vm.Compile(k.Work); err == nil {
			m := vm.NewMachine(p)
			m.SetState(st)
			return &workRunner{work: k.Work, mach: m}
		}
	}
	env := wfunc.NewEnv(k.Work)
	env.State = st
	return &workRunner{work: k.Work, env: env}
}

// newWorkRunnerCompiled builds a runner around a pre-compiled VM program
// (nil selects the interpreter), binding it to the instance state st. This
// is the allocation-light path: a shared artifact bundle compiles each
// kernel once and every engine stamps frames from it.
func newWorkRunnerCompiled(k *wfunc.Kernel, st *wfunc.State, prog *vm.Program) *workRunner {
	if prog != nil {
		m := vm.NewMachine(prog)
		m.SetState(st)
		return &workRunner{work: k.Work, mach: m}
	}
	env := wfunc.NewEnv(k.Work)
	env.State = st
	return &workRunner{work: k.Work, env: env}
}

// run fires the work function once against the given tapes.
func (r *workRunner) run(in, out wfunc.Tape, msg wfunc.Messenger, print func(float64)) error {
	if r.mach != nil {
		return r.mach.Run(in, out, msg, print)
	}
	env := r.env
	env.Reset()
	env.In, env.Out = in, out
	env.Msg = msg
	env.Print = print
	return wfunc.Exec(r.work, env)
}

// setState rebinds the runner to a replacement state object (snapshot
// restore).
func (r *workRunner) setState(st *wfunc.State) {
	if r.mach != nil {
		r.mach.SetState(st)
		return
	}
	r.env.State = st
}
