package exec

import (
	"bytes"
	"testing"

	"streamit/internal/apps"
)

// FuzzCheckpointRestore: RestoreCheckpoint must reject arbitrary,
// corrupted, or truncated bytes with an error — never panic and never
// allocate unboundedly. Seeds include a valid image and targeted
// corruptions of it so the fuzzer starts deep in the format.
func FuzzCheckpointRestore(f *testing.F) {
	src := buildEngine2(f, BackendVM)
	if err := src.Run(2); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.WriteCheckpoint(&buf, 2); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("STRMCKPT"))
	f.Add(valid[:len(valid)/2])
	for _, off := range []int{8, 12, 20, 28, 36, len(valid) - 9} {
		if off >= 0 && off < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e := buildEngine2(t, BackendVM)
		it, err := e.RestoreCheckpoint(data)
		if err != nil {
			return // rejected cleanly: the only acceptable failure mode
		}
		// An accepted image must be internally consistent enough to run.
		if it < 0 {
			t.Fatalf("accepted image with negative iteration %d", it)
		}
		if rerr := e.RunSteady(1); rerr != nil {
			// A structured error is fine (e.g. restored tape underflow
			// turned into an ExecError); a panic would have failed already.
			t.Logf("resumed run errored (acceptably): %v", rerr)
		}
	})
}

// buildEngine2 is buildEngine for both *testing.T and *testing.F.
func buildEngine2(tb testing.TB, backend Backend) *Engine {
	tb.Helper()
	e, err := NewBackend(apps.FMRadio(2, 8), backend)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}
