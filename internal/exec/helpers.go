package exec

import (
	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// SliceSource returns a filter that emits the given data cyclically, one
// item per firing. It is the standard test/example input driver (the
// paper's ReadFromAtoD / file-input filter).
func SliceSource(name string, data []float64) *ir.Filter {
	b := wfunc.NewKernel(name, 0, 0, 1)
	b.WorkBody(wfunc.Push1(wfunc.C(0))) // placeholder body; native fn used
	k := b.Build()
	pos := 0
	return &ir.Filter{
		Kernel: k,
		In:     ir.TypeVoid,
		Out:    ir.TypeFloat,
		WorkFn: func(in, out wfunc.Tape, state *wfunc.State) {
			out.Push(data[pos%len(data)])
			pos++
		},
	}
}

// SliceSink returns a filter that appends every consumed item to a slice,
// plus a pointer to that slice for inspection after execution (the paper's
// AudioBackEnd / file-output filter).
func SliceSink(name string) (*ir.Filter, *[]float64) {
	b := wfunc.NewKernel(name, 1, 1, 0)
	b.WorkBody(wfunc.Pop1())
	k := b.Build()
	collected := &[]float64{}
	return &ir.Filter{
		Kernel: k,
		In:     ir.TypeFloat,
		Out:    ir.TypeVoid,
		WorkFn: func(in, out wfunc.Tape, state *wfunc.State) {
			*collected = append(*collected, in.Pop())
		},
	}, collected
}

// RampSource returns an IL filter pushing 0, 1, 2, ... one per firing.
func RampSource(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 0, 0, 1)
	n := b.Field("n", 0)
	b.WorkBody(
		wfunc.Push1(n),
		wfunc.SetF(n, wfunc.AddX(n, wfunc.C(1))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeFloat}
}

// NullSink returns an IL filter that discards pop items per firing.
func NullSink(name string, pop int) *ir.Filter {
	b := wfunc.NewKernel(name, pop, pop, 0)
	var body []wfunc.Stmt
	for i := 0; i < pop; i++ {
		body = append(body, wfunc.Pop1())
	}
	b.WorkBody(body...)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeVoid}
}

// RunCollect is a convenience that builds an engine for prog, runs init
// plus iters steady iterations, and returns the items collected by sink
// (which must have been created with SliceSink and placed in prog).
func RunCollect(prog *ir.Program, iters int, sink *[]float64) ([]float64, error) {
	e, err := New(prog)
	if err != nil {
		return nil, err
	}
	if err := e.Run(iters); err != nil {
		return nil, err
	}
	return *sink, nil
}
