package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// errStopped unwinds a node goroutine after the run was aborted (watchdog
// deadlock, or another node's error). It never reaches the caller of Run.
var errStopped = errors.New("exec: run aborted")

// ParallelEngine executes a flattened stream graph on real OS threads: one
// goroutine per node, connected by Go channels carrying one steady-state
// iteration's worth of items per batch. It is the natural Go backend for
// StreamIt's execution model — every filter is an autonomous actor and the
// steady-state rates make batch sizes static.
//
// Peeking filters keep their window margin locally between batches, and
// feedback delays pre-populate the loop channel, so results are
// bit-identical to the sequential Engine. Teleport messaging requires the
// sequential engine's global wavefront ordering and is not supported here.
//
// A watchdog supervises every run: if no batch moves and no filter fires
// for the configured interval, the run aborts with a *DeadlockError naming
// each blocked node, the tape it waits on, and the traced wait-cycle —
// instead of hanging forever.
type ParallelEngine struct {
	G   *ir.Graph
	Sch *sched.Schedule
	// Backend is the work-function execution substrate (bytecode VM by
	// default).
	Backend Backend

	nodes []*pnodeRT
	chans []chan []float64

	// Depth is the channel buffering in steady-state batches (default 2:
	// double buffering).
	Depth int

	// Watchdog is the stall-detection interval: 0 selects
	// DefaultWatchdogInterval, negative disables detection.
	Watchdog time.Duration

	sup *supervisor

	// prof and rec are the observability hooks; nil when disabled.
	prof *obs.Profiler
	rec  *obs.Recorder

	// Per-run supervision state.
	stopCh   chan struct{}
	progress int64
	statuses []*nodeStatus
}

// pnodeRT is the per-goroutine runtime state of one node.
type pnodeRT struct {
	node  *ir.Node
	state *wfunc.State
	// carry holds unconsumed items per input port (the peek margin and any
	// initialization residue).
	carry [][]float64
	// fired counts steady-state firings (the fault injector's index).
	fired int64
	// override, when set, fires in place of the kernel's work function
	// during steady state (MappedEngine.OverrideWork; the parallel engine
	// ignores it).
	override func(in, out wfunc.Tape)
}

// NewParallel prepares a parallel engine for a scheduled graph on the
// default (VM) backend. Programs with portals or latency constraints are
// rejected — teleport messaging needs the sequential runtime.
func NewParallel(g *ir.Graph, s *sched.Schedule) (*ParallelEngine, error) {
	return NewParallelBackend(g, s, BackendVM)
}

// NewParallelBackend is NewParallel with an explicit work-function
// backend.
func NewParallelBackend(g *ir.Graph, s *sched.Schedule, backend Backend) (*ParallelEngine, error) {
	return NewParallelOpts(g, s, Options{Backend: backend})
}

// NewParallelOpts is the full-option constructor: backend selection plus
// supervised execution (fault injection, recovery policies, watchdog
// interval).
func NewParallelOpts(g *ir.Graph, s *sched.Schedule, opts Options) (*ParallelEngine, error) {
	if len(g.Portals) > 0 || len(g.Constraints) > 0 {
		return nil, fmt.Errorf("exec: the parallel backend does not support teleport messaging; use the sequential Engine")
	}
	for _, e := range g.Edges {
		if e.Back {
			return nil, fmt.Errorf("exec: feedback loops need finer-than-batch interleaving; use the sequential Engine")
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter && wfunc.SendsMessages(n.Filter.Kernel.Work) {
			return nil, fmt.Errorf("exec: filter %s sends messages; use the sequential Engine", n.Name)
		}
	}
	pe := &ParallelEngine{G: g, Sch: s, Backend: opts.Backend, Depth: 2, Watchdog: opts.Watchdog, rec: opts.Trace}
	if opts.Profile {
		pe.prof = obs.NewProfiler(nodeNames(g))
	}
	sup, err := newSupervisor(g, opts)
	if err != nil {
		return nil, err
	}
	pe.sup = sup
	pe.nodes = make([]*pnodeRT, len(g.Nodes))
	for _, n := range g.Nodes {
		rt := &pnodeRT{node: n, carry: make([][]float64, len(n.In))}
		if n.Kind == ir.NodeFilter {
			k := n.Filter.Kernel
			rt.state = k.NewState()
			if k.Init != nil {
				env := wfunc.NewEnv(k.Init)
				env.State = rt.state
				if err := wfunc.Exec(k.Init, env); err != nil {
					return nil, fmt.Errorf("init of %s: %w", n.Name, err)
				}
			}
		}
		pe.nodes[n.ID] = rt
	}
	return pe, nil
}

// SupervisionReport renders per-filter recovery counters (empty when the
// engine is unsupervised or nothing degraded).
func (pe *ParallelEngine) SupervisionReport() string { return pe.sup.Report() }

// Degraded returns per-filter recovery counters (nil when unsupervised).
func (pe *ParallelEngine) Degraded() map[string]DegradedStats {
	if pe.sup == nil {
		return nil
	}
	return pe.sup.Stats()
}

// Run executes the initialization phase sequentially (it is a transient)
// and then iters steady-state iterations with every node running
// concurrently. It returns only after all goroutines drain.
func (pe *ParallelEngine) Run(iters int) error {
	// Initialization runs on a scratch sequential engine sharing our node
	// states, leaving each channel's residue in carry buffers. The init
	// transient is unsupervised; fault firing indexes count steady-state
	// firings per filter.
	seq, err := NewFromGraph(pe.G, pe.Sch)
	if err != nil {
		return err
	}
	// Adopt the sequential engine's freshly-initialized states so field
	// tables computed by init functions are shared, and share our profiler
	// and trace recorder so the init transient lands in the same counters.
	for _, n := range pe.G.Nodes {
		pe.nodes[n.ID].state = seq.nodes[n.ID].state
	}
	seq.adoptObs(pe.prof, pe.rec)
	if err := seq.RunInit(); err != nil {
		return err
	}
	// Move channel residue (init leftovers, feedback delays, peek margins)
	// into the consumers' carry buffers.
	for _, e := range pe.G.Edges {
		ch := seq.chans[e.ID]
		buf := make([]float64, ch.Len())
		for i := range buf {
			buf[i] = ch.Pop()
		}
		pe.nodes[e.Dst.ID].carry[e.DstPort] = buf
	}

	// Steady state: one goroutine per node, batched channels per edge.
	pe.chans = make([]chan []float64, len(pe.G.Edges))
	for _, e := range pe.G.Edges {
		pe.chans[e.ID] = make(chan []float64, pe.Depth)
	}
	pe.stopCh = make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(pe.stopCh) }) }
	atomic.StoreInt64(&pe.progress, 0)
	pe.statuses = make([]*nodeStatus, len(pe.G.Nodes))
	for _, n := range pe.G.Nodes {
		pe.statuses[n.ID] = newNodeStatus(n.Name)
	}
	var wd *watchdog
	if pe.Watchdog >= 0 {
		interval := pe.Watchdog
		if interval == 0 {
			interval = DefaultWatchdogInterval
		}
		wd = newWatchdog("parallel", interval, &pe.progress, pe.statuses, stopAll)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(pe.G.Nodes))
	for _, rt := range pe.nodes {
		wg.Add(1)
		go func(rt *pnodeRT) {
			defer wg.Done()
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = asExecError(rt.node.Name, rt.fired, r)
					}
				}()
				return pe.runNode(rt, iters)
			}()
			if err != nil {
				if err != errStopped {
					errs <- err
				}
				// Abort the whole network so producers and consumers blocked
				// on this node's tapes unwind instead of hanging.
				stopAll()
			}
		}(rt)
	}
	wg.Wait()
	if wd != nil {
		wd.close()
		if derr := wd.error(); derr != nil {
			return derr
		}
	}
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// recvBatch receives one batch, recording the wait state while blocked so
// the watchdog can report who waits on whom.
func (pe *ParallelEngine) recvBatch(n *ir.Node, e *ir.Edge, q *SliceQueue, st *nodeStatus) ([]float64, error) {
	ch := pe.chans[e.ID]
	select {
	case batch, ok := <-ch:
		if !ok {
			return nil, pe.closedEarly(n)
		}
		atomic.AddInt64(&pe.progress, 1)
		return batch, nil
	default:
	}
	st.set(stWaitRecv, e.String(), q.Len(), e.Src.ID)
	defer st.set(stRunning, "", 0, -1)
	if pe.prof != nil {
		t0 := time.Now()
		defer func() { pe.prof.At(n.ID).AddStall(time.Since(t0)) }()
	}
	select {
	case batch, ok := <-ch:
		if !ok {
			return nil, pe.closedEarly(n)
		}
		atomic.AddInt64(&pe.progress, 1)
		return batch, nil
	case <-pe.stopCh:
		return nil, errStopped
	}
}

func (pe *ParallelEngine) closedEarly(n *ir.Node) error {
	select {
	case <-pe.stopCh:
		return errStopped
	default:
		return fmt.Errorf("exec: channel into %s closed early", n.Name)
	}
}

// sendBatch ships one batch, recording the wait state while blocked.
func (pe *ParallelEngine) sendBatch(e *ir.Edge, batch []float64, st *nodeStatus) error {
	ch := pe.chans[e.ID]
	select {
	case ch <- batch:
		atomic.AddInt64(&pe.progress, 1)
		return nil
	default:
	}
	st.set(stWaitSend, e.String(), len(batch), e.Dst.ID)
	defer st.set(stRunning, "", 0, -1)
	if pe.prof != nil {
		t0 := time.Now()
		defer func() { pe.prof.At(e.Src.ID).AddStall(time.Since(t0)) }()
	}
	select {
	case ch <- batch:
		atomic.AddInt64(&pe.progress, 1)
		return nil
	case <-pe.stopCh:
		return errStopped
	}
}

// runNode executes one node's share of iters steady iterations.
func (pe *ParallelEngine) runNode(rt *pnodeRT, iters int) error {
	n := rt.node
	st := pe.statuses[n.ID]
	defer st.set(stDone, "", 0, -1)
	reps := pe.Sch.Reps[n.ID]

	// Per-iteration production sizes (consumption is implied by batches).
	produce := make([]int, len(n.Out))
	for p := range n.Out {
		if n.Out[p] != nil {
			produce[p] = reps * n.PushPort(p)
		}
	}

	var runner *workRunner
	if n.Kind == ir.NodeFilter && n.Filter.WorkFn == nil {
		// Built here, after Run adopted the init-phase states, so the
		// runner binds the state the work function must see.
		runner = newWorkRunner(n.Filter.Kernel, rt.state, pe.Backend)
	}
	// Always close outputs so consumers never block on a dead producer.
	defer func() {
		for _, e := range n.Out {
			if e != nil {
				close(pe.chans[e.ID])
			}
		}
	}()

	in := make([]*SliceQueue, len(n.In))
	for p := range n.In {
		in[p] = &SliceQueue{buf: rt.carry[p]}
	}
	out := make([]*SliceQueue, len(n.Out))
	for p := range n.Out {
		out[p] = &SliceQueue{}
	}

	// Filter tapes, wrapped in counting adapters when profiling.
	var pst *obs.FilterStats
	if pe.prof != nil {
		pst = pe.prof.At(n.ID)
	}
	var tIn, tOut wfunc.Tape
	if n.Kind == ir.NodeFilter {
		if len(n.In) > 0 && n.In[0] != nil {
			tIn = in[0]
			if pst != nil {
				tIn = &obsTape{inner: in[0], st: pst}
			}
		}
		if len(n.Out) > 0 && n.Out[0] != nil {
			tOut = out[0]
			if pst != nil {
				tOut = &obsTape{inner: out[0], st: pst, lenFn: out[0].Len}
			}
		}
	}

	for it := 0; it < iters; it++ {
		// Receive one batch per input port.
		for p, e := range n.In {
			if e == nil {
				continue
			}
			batch, err := pe.recvBatch(n, e, in[p], st)
			if err != nil {
				return err
			}
			in[p].Append(batch)
		}
		// Fire reps times.
		for r := 0; r < reps; r++ {
			if pst == nil && pe.rec == nil {
				if err := pe.fireOnce(rt, runner, in, out, tIn, tOut, st); err != nil {
					return err
				}
			} else {
				start := time.Now()
				err := pe.fireOnce(rt, runner, in, out, tIn, tOut, st)
				d := time.Since(start)
				if pst != nil {
					if n.Kind == ir.NodeFilter {
						pst.AddWork(d)
					} else {
						profileSJ(pst, n)
					}
				}
				if pe.rec != nil && n.Kind == ir.NodeFilter {
					end := pe.rec.Stamp()
					pe.rec.Slice(n.ID, n.Name, "firing", end-d, end)
				}
				if err != nil {
					return err
				}
			}
			if pst != nil {
				pst.AddFiring()
			}
			rt.fired++
			atomic.AddInt64(&pe.progress, 1)
		}
		// Ship one batch per output port.
		for p, e := range n.Out {
			if e == nil {
				continue
			}
			batch := out[p].Take(produce[p])
			if err := pe.sendBatch(e, batch, st); err != nil {
				return err
			}
		}
	}
	return nil
}

func (pe *ParallelEngine) fireOnce(rt *pnodeRT, runner *workRunner, in, out []*SliceQueue, tIn, tOut wfunc.Tape, st *nodeStatus) error {
	n := rt.node
	switch n.Kind {
	case ir.NodeFilter:
		if pe.sup != nil {
			return pe.fireFilterSupervised(rt, runner, in, out, tIn, tOut, st)
		}
		if n.Filter.WorkFn != nil {
			n.Filter.WorkFn(tIn, tOut, rt.state)
			return nil
		}
		if err := runner.run(tIn, tOut, nil, nil); err != nil {
			return &ExecError{Filter: n.Name, Op: "work", Iteration: rt.fired, Err: err}
		}
		return nil
	case ir.NodeSplitter:
		if n.SJ.Kind == ir.SJDuplicate {
			v := in[0].Pop()
			for p, e := range n.Out {
				if e != nil {
					out[p].Push(v)
				}
			}
			return nil
		}
		for p, e := range n.Out {
			for k := 0; k < n.SJ.Weights[p]; k++ {
				v := in[0].Pop()
				if e != nil {
					out[p].Push(v)
				}
			}
		}
		return nil
	case ir.NodeJoiner:
		for p, e := range n.In {
			if e == nil {
				continue
			}
			for k := 0; k < n.SJ.Weights[p]; k++ {
				out[0].Push(in[p].Pop())
			}
		}
		return nil
	}
	return fmt.Errorf("exec: unknown node kind")
}

// fireFilterSupervised wraps one filter firing in the fault injector and
// the filter's recovery policy, mirroring the sequential engine's
// semantics on the batch queues.
func (pe *ParallelEngine) fireFilterSupervised(rt *pnodeRT, runner *workRunner, in, out []*SliceQueue, tIn, tOut wfunc.Tape, st *nodeStatus) error {
	n := rt.node
	name := n.Name
	pol := pe.sup.pol.For(name)
	rollback := pol.Action != faults.Fail
	var qIn, qOut *SliceQueue
	if len(in) > 0 && n.In[0] != nil {
		qIn = in[0]
	}
	if len(out) > 0 && n.Out[0] != nil {
		qOut = out[0]
	}
	var inHead, outLen int
	var stateSave *wfunc.State
	if rollback {
		if qIn != nil {
			inHead = qIn.head
		}
		if qOut != nil {
			outLen = len(qOut.buf)
		}
		if rt.state != nil {
			stateSave = rt.state.Clone()
		}
	}
	restore := func() {
		if qIn != nil {
			qIn.head = inHead
		}
		if qOut != nil {
			qOut.buf = qOut.buf[:outLen]
		}
		if stateSave != nil {
			rt.state = stateSave.Clone()
			if runner != nil {
				runner.setState(rt.state)
			}
		}
	}
	attempt := func(fault faults.Fault, injected bool) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = asExecError(name, rt.fired, r)
			}
		}()
		if injected {
			switch fault.Kind {
			case faults.Panic:
				return &ExecError{Filter: name, Op: "injected panic", Iteration: rt.fired}
			case faults.Stall:
				if rollback {
					// A recoverable policy turns the stall into a synchronous
					// failure (the sequential engine's convention), so
					// retry/skip/restart actually recover instead of wedging
					// the filter until the watchdog aborts the run.
					return &ExecError{Filter: name, Op: "injected stall", Iteration: rt.fired,
						Err: fmt.Errorf("stall reported synchronously under a %s policy", pol.Action)}
				}
				// Block like a wedged kernel until the watchdog aborts the run.
				st.set(stStalled, "", 0, -1)
				<-pe.stopCh
				return errStopped
			}
		}
		wOut := tOut
		if injected && fault.Kind == faults.Corrupt {
			wOut = corruptOut(wOut)
		}
		if n.Filter.WorkFn != nil {
			n.Filter.WorkFn(tIn, wOut, rt.state)
			return nil
		}
		if err := runner.run(tIn, wOut, nil, nil); err != nil {
			return &ExecError{Filter: name, Op: "work", Iteration: rt.fired, Err: err}
		}
		return nil
	}
	fault, injected := pe.sup.take(name, rt.fired)
	if injected {
		traceFault(pe.rec, n.ID, name, fault.Kind.String())
	}
	err := attempt(fault, injected)
	if err == nil || err == errStopped {
		return err
	}
	switch pol.Action {
	case faults.Retry:
		for a := 1; a <= pol.Retries; a++ {
			pe.sup.noteRetry(name)
			traceRecovery(pe.rec, n.ID, name, "retry")
			if pol.Backoff > 0 {
				time.Sleep(time.Duration(a) * pol.Backoff)
			}
			restore()
			if err = attempt(faults.Fault{}, false); err == nil || err == errStopped {
				return err
			}
		}
		return fmt.Errorf("exec: %d retries exhausted: %w", pol.Retries, err)
	case faults.Skip:
		restore()
		pe.sup.noteSkip(name)
		traceRecovery(pe.rec, n.ID, name, "skip")
		skipFiring(n, tIn, tOut)
		return nil
	case faults.Restart:
		restore()
		stFresh, serr := freshState(n)
		if serr != nil {
			return serr
		}
		rt.state = stFresh
		if runner != nil {
			runner.setState(stFresh)
		}
		pe.sup.noteRestart(name)
		traceRecovery(pe.rec, n.ID, name, "restart")
		if err = attempt(faults.Fault{}, false); err != nil && err != errStopped {
			return fmt.Errorf("exec: restart did not recover: %w", err)
		}
		return err
	}
	return err
}

// SliceQueue is a simple FIFO over a slice implementing wfunc.Tape; the
// parallel backend uses one per port with batch append/take.
type SliceQueue struct {
	buf  []float64
	head int
}

// Append adds a batch at the write end.
func (q *SliceQueue) Append(batch []float64) {
	// Compact occasionally so the backing array doesn't grow unboundedly.
	if q.head > 4096 && q.head >= len(q.buf)/2 {
		q.buf = append([]float64(nil), q.buf[q.head:]...)
		q.head = 0
	}
	q.buf = append(q.buf, batch...)
}

// Take removes exactly n items from the read end.
func (q *SliceQueue) Take(n int) []float64 {
	if n < 0 || n > q.Len() {
		panic(tapeFault{op: "take", detail: fmt.Sprintf("take(%d) with %d items buffered", n, q.Len())})
	}
	out := make([]float64, n)
	copy(out, q.buf[q.head:q.head+n])
	q.head += n
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return out
}

// Compact drops consumed items from the front of the backing array. The
// mapped engine calls it at iteration boundaries on its worker-local
// queues, where per-item Push/Pop traffic never passes through Append's
// occasional compaction.
func (q *SliceQueue) Compact() {
	if q.head == 0 {
		return
	}
	n := copy(q.buf, q.buf[q.head:])
	q.buf = q.buf[:n]
	q.head = 0
}

// Peek implements wfunc.Tape.
func (q *SliceQueue) Peek(i int) float64 {
	if i < 0 || q.head+i >= len(q.buf) {
		panic(tapeFault{op: "peek", detail: fmt.Sprintf("peek(%d) with %d items buffered", i, q.Len())})
	}
	return q.buf[q.head+i]
}

// Pop implements wfunc.Tape.
func (q *SliceQueue) Pop() float64 {
	if q.head >= len(q.buf) {
		panic(tapeFault{op: "pop", detail: "pop on empty batch queue"})
	}
	v := q.buf[q.head]
	q.head++
	return v
}

// Push implements wfunc.Tape.
func (q *SliceQueue) Push(v float64) { q.buf = append(q.buf, v) }

// Len returns buffered items.
func (q *SliceQueue) Len() int { return len(q.buf) - q.head }
