package exec

import (
	"fmt"
	"sync"

	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// ParallelEngine executes a flattened stream graph on real OS threads: one
// goroutine per node, connected by Go channels carrying one steady-state
// iteration's worth of items per batch. It is the natural Go backend for
// StreamIt's execution model — every filter is an autonomous actor and the
// steady-state rates make batch sizes static.
//
// Peeking filters keep their window margin locally between batches, and
// feedback delays pre-populate the loop channel, so results are
// bit-identical to the sequential Engine. Teleport messaging requires the
// sequential engine's global wavefront ordering and is not supported here.
type ParallelEngine struct {
	G   *ir.Graph
	Sch *sched.Schedule
	// Backend is the work-function execution substrate (bytecode VM by
	// default).
	Backend Backend

	nodes []*pnodeRT
	chans []chan []float64

	// Depth is the channel buffering in steady-state batches (default 2:
	// double buffering).
	Depth int
}

// pnodeRT is the per-goroutine runtime state of one node.
type pnodeRT struct {
	node  *ir.Node
	state *wfunc.State
	// carry holds unconsumed items per input port (the peek margin and any
	// initialization residue).
	carry [][]float64
}

// NewParallel prepares a parallel engine for a scheduled graph on the
// default (VM) backend. Programs with portals or latency constraints are
// rejected — teleport messaging needs the sequential runtime.
func NewParallel(g *ir.Graph, s *sched.Schedule) (*ParallelEngine, error) {
	return NewParallelBackend(g, s, BackendVM)
}

// NewParallelBackend is NewParallel with an explicit work-function
// backend.
func NewParallelBackend(g *ir.Graph, s *sched.Schedule, backend Backend) (*ParallelEngine, error) {
	if len(g.Portals) > 0 || len(g.Constraints) > 0 {
		return nil, fmt.Errorf("exec: the parallel backend does not support teleport messaging; use the sequential Engine")
	}
	for _, e := range g.Edges {
		if e.Back {
			return nil, fmt.Errorf("exec: feedback loops need finer-than-batch interleaving; use the sequential Engine")
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter && wfunc.SendsMessages(n.Filter.Kernel.Work) {
			return nil, fmt.Errorf("exec: filter %s sends messages; use the sequential Engine", n.Name)
		}
	}
	pe := &ParallelEngine{G: g, Sch: s, Backend: backend, Depth: 2}
	pe.nodes = make([]*pnodeRT, len(g.Nodes))
	for _, n := range g.Nodes {
		rt := &pnodeRT{node: n, carry: make([][]float64, len(n.In))}
		if n.Kind == ir.NodeFilter {
			k := n.Filter.Kernel
			rt.state = k.NewState()
			if k.Init != nil {
				env := wfunc.NewEnv(k.Init)
				env.State = rt.state
				if err := wfunc.Exec(k.Init, env); err != nil {
					return nil, fmt.Errorf("init of %s: %w", n.Name, err)
				}
			}
		}
		pe.nodes[n.ID] = rt
	}
	return pe, nil
}

// Run executes the initialization phase sequentially (it is a transient)
// and then iters steady-state iterations with every node running
// concurrently. It returns only after all goroutines drain.
func (pe *ParallelEngine) Run(iters int) error {
	// Initialization runs on a scratch sequential engine sharing our node
	// states, leaving each channel's residue in carry buffers.
	seq, err := NewFromGraph(pe.G, pe.Sch)
	if err != nil {
		return err
	}
	// Adopt the sequential engine's freshly-initialized states so field
	// tables computed by init functions are shared.
	for _, n := range pe.G.Nodes {
		pe.nodes[n.ID].state = seq.nodes[n.ID].state
	}
	if err := seq.RunInit(); err != nil {
		return err
	}
	// Move channel residue (init leftovers, feedback delays, peek margins)
	// into the consumers' carry buffers.
	for _, e := range pe.G.Edges {
		ch := seq.chans[e.ID]
		buf := make([]float64, ch.Len())
		for i := range buf {
			buf[i] = ch.Pop()
		}
		pe.nodes[e.Dst.ID].carry[e.DstPort] = buf
	}

	// Steady state: one goroutine per node, batched channels per edge.
	pe.chans = make([]chan []float64, len(pe.G.Edges))
	for _, e := range pe.G.Edges {
		pe.chans[e.ID] = make(chan []float64, pe.Depth)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(pe.G.Nodes))
	for _, rt := range pe.nodes {
		wg.Add(1)
		go func(rt *pnodeRT) {
			defer wg.Done()
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("node %s: %v", rt.node.Name, r)
					}
				}()
				return pe.runNode(rt, iters)
			}()
			if err != nil {
				errs <- err
				// Unblock upstream producers so the whole network drains.
				for _, e := range rt.node.In {
					if e == nil {
						continue
					}
					go func(ch chan []float64) {
						for range ch {
						}
					}(pe.chans[e.ID])
				}
			}
		}(rt)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runNode executes one node's share of iters steady iterations.
func (pe *ParallelEngine) runNode(rt *pnodeRT, iters int) error {
	n := rt.node
	reps := pe.Sch.Reps[n.ID]

	// Per-iteration production sizes (consumption is implied by batches).
	produce := make([]int, len(n.Out))
	for p := range n.Out {
		if n.Out[p] != nil {
			produce[p] = reps * n.PushPort(p)
		}
	}

	var runner *workRunner
	if n.Kind == ir.NodeFilter && n.Filter.WorkFn == nil {
		// Built here, after Run adopted the init-phase states, so the
		// runner binds the state the work function must see.
		runner = newWorkRunner(n.Filter.Kernel, rt.state, pe.Backend)
	}
	// Always close outputs so consumers never block on a dead producer.
	defer func() {
		for _, e := range n.Out {
			if e != nil {
				close(pe.chans[e.ID])
			}
		}
	}()

	in := make([]*SliceQueue, len(n.In))
	for p := range n.In {
		in[p] = &SliceQueue{buf: rt.carry[p]}
	}
	out := make([]*SliceQueue, len(n.Out))
	for p := range n.Out {
		out[p] = &SliceQueue{}
	}

	for it := 0; it < iters; it++ {
		// Receive one batch per input port.
		for p, e := range n.In {
			if e == nil {
				continue
			}
			batch, ok := <-pe.chans[e.ID]
			if !ok {
				return fmt.Errorf("exec: channel into %s closed early", n.Name)
			}
			in[p].Append(batch)
		}
		// Fire reps times.
		for r := 0; r < reps; r++ {
			if err := pe.fireOnce(rt, runner, in, out); err != nil {
				return err
			}
		}
		// Ship one batch per output port.
		for p, e := range n.Out {
			if e == nil {
				continue
			}
			batch := out[p].Take(produce[p])
			pe.chans[e.ID] <- batch
		}
	}
	return nil
}

func (pe *ParallelEngine) fireOnce(rt *pnodeRT, runner *workRunner, in, out []*SliceQueue) error {
	n := rt.node
	switch n.Kind {
	case ir.NodeFilter:
		var tIn, tOut wfunc.Tape
		if len(in) > 0 && n.In[0] != nil {
			tIn = in[0]
		}
		if len(out) > 0 && n.Out[0] != nil {
			tOut = out[0]
		}
		if n.Filter.WorkFn != nil {
			n.Filter.WorkFn(tIn, tOut, rt.state)
			return nil
		}
		return runner.run(tIn, tOut, nil, nil)
	case ir.NodeSplitter:
		if n.SJ.Kind == ir.SJDuplicate {
			v := in[0].Pop()
			for p, e := range n.Out {
				if e != nil {
					out[p].Push(v)
				}
			}
			return nil
		}
		for p, e := range n.Out {
			for k := 0; k < n.SJ.Weights[p]; k++ {
				v := in[0].Pop()
				if e != nil {
					out[p].Push(v)
				}
			}
		}
		return nil
	case ir.NodeJoiner:
		for p, e := range n.In {
			if e == nil {
				continue
			}
			for k := 0; k < n.SJ.Weights[p]; k++ {
				out[0].Push(in[p].Pop())
			}
		}
		return nil
	}
	return fmt.Errorf("exec: unknown node kind")
}

// SliceQueue is a simple FIFO over a slice implementing wfunc.Tape; the
// parallel backend uses one per port with batch append/take.
type SliceQueue struct {
	buf  []float64
	head int
}

// Append adds a batch at the write end.
func (q *SliceQueue) Append(batch []float64) {
	// Compact occasionally so the backing array doesn't grow unboundedly.
	if q.head > 4096 && q.head >= len(q.buf)/2 {
		q.buf = append([]float64(nil), q.buf[q.head:]...)
		q.head = 0
	}
	q.buf = append(q.buf, batch...)
}

// Take removes exactly n items from the read end.
func (q *SliceQueue) Take(n int) []float64 {
	out := make([]float64, n)
	copy(out, q.buf[q.head:q.head+n])
	q.head += n
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return out
}

// Peek implements wfunc.Tape.
func (q *SliceQueue) Peek(i int) float64 { return q.buf[q.head+i] }

// Pop implements wfunc.Tape.
func (q *SliceQueue) Pop() float64 {
	v := q.buf[q.head]
	q.head++
	return v
}

// Push implements wfunc.Tape.
func (q *SliceQueue) Push(v float64) { q.buf = append(q.buf, v) }

// Len returns buffered items.
func (q *SliceQueue) Len() int { return len(q.buf) - q.head }
