package exec

import (
	"errors"
	"strings"
	"testing"

	"streamit/internal/fuse"
	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// lyingFilter declares the given push rate but emits only `actual` items
// per firing from its native body, so downstream batch accounting
// underflows at runtime.
func lyingFilter(name string, declaredPush, actual int) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, declaredPush)
	body := []wfunc.Stmt{wfunc.Pop1()}
	for i := 0; i < declaredPush; i++ {
		body = append(body, wfunc.Push1(wfunc.C(0)))
	}
	b.WorkBody(body...)
	return &ir.Filter{
		Kernel: b.Build(),
		In:     ir.TypeFloat,
		Out:    ir.TypeFloat,
		WorkFn: func(in, out wfunc.Tape, state *wfunc.State) {
			v := in.Pop()
			for i := 0; i < actual; i++ {
				out.Push(v)
			}
		},
	}
}

// TestTakeUnderflowIsExecError: a filter that pushes fewer items than its
// declared rate makes the parallel engine's batch Take underflow; that must
// surface as a structured ExecError (op "take"), not a raw slice panic.
func TestTakeUnderflowIsExecError(t *testing.T) {
	prog := &ir.Program{Name: "liar", Top: ir.Pipe("main",
		RampSource("src"),
		lyingFilter("liar", 2, 1),
		NullSink("snk", 2),
	)}
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallel(g, s)
	if err != nil {
		t.Fatal(err)
	}
	err = pe.Run(2)
	if err == nil {
		t.Fatal("expected a take underflow error")
	}
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("want *ExecError, got %T: %v", err, err)
	}
	if ee.Op != "take" {
		t.Fatalf("want op %q, got %q (%v)", "take", ee.Op, ee)
	}
	if !strings.Contains(ee.Filter, "liar") {
		t.Fatalf("fault attributed to %q, want the lying filter (%v)", ee.Filter, ee)
	}
}

// TestSliceQueueTakeGuard: the direct panic payload of an underflowing
// Take converts into the same ExecError shape the engines report.
func TestSliceQueueTakeGuard(t *testing.T) {
	q := &SliceQueue{}
	q.Append([]float64{1, 2})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Take(5) on 2 items did not panic")
		}
		ee := asExecError("f", 7, r)
		if ee.Op != "take" || ee.Filter != "f" || ee.Iteration != 7 {
			t.Fatalf("unexpected error shape: %v", ee)
		}
	}()
	q.Take(5)
}

// TestSliceQueueCompact: compaction preserves content while resetting the
// consumed prefix.
func TestSliceQueueCompact(t *testing.T) {
	q := &SliceQueue{}
	q.Append([]float64{1, 2, 3, 4})
	q.Pop()
	q.Pop()
	q.Compact()
	if q.head != 0 || q.Len() != 2 {
		t.Fatalf("after compact: head=%d len=%d", q.head, q.Len())
	}
	if q.Peek(0) != 3 || q.Peek(1) != 4 {
		t.Fatalf("compact corrupted content: %v", q.buf)
	}
}

// fusedFaultProgram builds src -> fuse(a, b) -> sink and returns the error
// from running it sequentially.
func fusedFaultProgram(t *testing.T, a, b *ir.Filter, sinkPop int) error {
	t.Helper()
	fused, err := fuse.Pipeline("fault", a, b)
	if err != nil {
		t.Fatalf("fusion itself failed: %v", err)
	}
	prog := &ir.Program{Name: "ff", Top: ir.Pipe("main",
		RampSource("src"), fused, NullSink("snk", sinkPop),
	)}
	e, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run(2)
}

// TestFusedInterTapeUnderflowIsExecError: a pure native producer that
// pushes fewer items than declared starves the fused intermediate buffer;
// the consumer's pop must surface as an ExecError naming the fuse tape.
func TestFusedInterTapeUnderflowIsExecError(t *testing.T) {
	a := lyingFilter("alie", 2, 1)
	a.Pure = true
	kb := wfunc.NewKernel("b", 2, 2, 1)
	kb.WorkBody(wfunc.Push1(wfunc.AddX(wfunc.PopE(), wfunc.PopE())))
	b := &ir.Filter{Kernel: kb.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}

	err := fusedFaultProgram(t, a, b, 1)
	if err == nil {
		t.Fatal("expected an intermediate-tape underflow error")
	}
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("want *ExecError, got %T: %v", err, err)
	}
	if !strings.Contains(ee.Err.Error(), "fuse: intermediate") {
		t.Fatalf("want a fuse intermediate-tape fault, got %v", ee)
	}
}

// TestFusedWindowOverreadIsExecError: a pure native producer peeking past
// its declared window trips the window-tape bound instead of reading
// items the schedule never guaranteed.
func TestFusedWindowOverreadIsExecError(t *testing.T) {
	ka := wfunc.NewKernel("wlie", 1, 1, 1)
	ka.WorkBody(wfunc.Pop1(), wfunc.Push1(wfunc.C(0)))
	a := &ir.Filter{
		Kernel: ka.Build(),
		In:     ir.TypeFloat,
		Out:    ir.TypeFloat,
		Pure:   true,
		WorkFn: func(in, out wfunc.Tape, state *wfunc.State) {
			out.Push(in.Peek(10)) // far past the declared 1-item window
		},
	}
	kb := wfunc.NewKernel("b", 1, 1, 1)
	kb.WorkBody(wfunc.Push1(wfunc.PopE()))
	b := &ir.Filter{Kernel: kb.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}

	err := fusedFaultProgram(t, a, b, 1)
	if err == nil {
		t.Fatal("expected a window over-read error")
	}
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("want *ExecError, got %T: %v", err, err)
	}
	if !strings.Contains(ee.Err.Error(), "fuse: window") {
		t.Fatalf("want a fuse window-tape fault, got %v", ee)
	}
}
