package exec

import (
	"fmt"
	"io"
)

// Mapped checkpoints reuse the sequential engine's image format over the
// same (rewritten) graph and schedule, so the fingerprints and byte images
// are interchangeable: a checkpoint written by a mapped run restores into
// a sequential engine over the mapped graph and vice versa. The mapped
// engine does not track per-edge pushed/popped counters at runtime (the
// queues are drained batchwise); they are reconstructed from firing
// counts, which is exact because every firing of an edge's source pushes a
// static rate onto it:
//
//	pushed(e) = initPushed(e) + (fired(src) - initFired(src)) * rate(e)
//	popped(e) = pushed(e) - buffered(e)
//
// where initFired/initPushed are the schedule's initialization totals
// (initPushed includes an edge's pre-loaded delay items, which the channel
// counters count as pushes).
//
// Pipelined engines add two wrinkles. An edge's buffered items split
// between the consumer's queue and the producer's unflushed staging
// residue; the image concatenates them (consumer queue first — it holds
// the older items), and a skewed restore re-derives the split from the
// flush schedule. And between segment boundaries the barrier is
// stage-skewed — each node has completed cycle-stage iterations, not a
// common count — so the image carries the SWPS trailer (checkpoint.go)
// recording the segment position and stage schedule; only a pipelined
// mapped engine with the same schedule can resume it. Boundary images
// (cycle 0 or segIters+maxStage) are uniform and interchange with the
// sequential engine like lockstep images do.

// Fingerprint hashes the engine's graph and schedule structure; it equals
// the sequential engine's fingerprint over the same graph and schedule.
func (me *MappedEngine) Fingerprint() uint64 { return graphFingerprint(me.G, me.Sch) }

// initCounters derives the post-initialization firing and push totals from
// the schedule. These let checkpoints be written and validated without
// replaying initialization.
func (me *MappedEngine) initCounters() {
	me.initFired = make([]int64, len(me.G.Nodes))
	for _, n := range me.G.Nodes {
		me.initFired[n.ID] = int64(me.Sch.InitReps[n.ID])
	}
	me.initPushed = make([]int64, len(me.G.Edges))
	for _, e := range me.G.Edges {
		me.initPushed[e.ID] = me.initFired[e.Src.ID]*int64(e.Src.PushPort(e.SrcPort)) +
			int64(len(e.Initial))
	}
}

// image captures the engine-neutral checkpoint at the current barrier.
func (me *MappedEngine) image(iteration int64) *ckptImage {
	sw := me.swp
	if sw != nil {
		iteration = sw.base + sw.completed(me.iter)
	}
	img := &ckptImage{
		iteration: iteration,
		nodes:     make([]ckptNode, len(me.nodes)),
		edges:     make([]ckptEdge, len(me.G.Edges)),
		pending:   make([][]*message, len(me.nodes)),
	}
	for i, rt := range me.nodes {
		img.nodes[i] = ckptNode{fired: rt.fired, state: rt.state}
		img.firings += rt.fired
	}
	for _, e := range me.G.Edges {
		q := me.queues[e.ID]
		items := make([]float64, 0, q.Len())
		for i := 0; i < q.Len(); i++ {
			items = append(items, q.Peek(i))
		}
		if st := me.stage[e.ID]; st != nil {
			// Unflushed staging residue follows the consumer queue's items
			// (it is the newest stretch of the edge's content).
			for i := 0; i < st.Len(); i++ {
				items = append(items, st.Peek(i))
			}
		}
		pushed := me.initPushed[e.ID] +
			(me.nodes[e.Src.ID].fired-me.initFired[e.Src.ID])*int64(e.Src.PushPort(e.SrcPort))
		img.edges[e.ID] = ckptEdge{pushed: pushed, popped: pushed - int64(len(items)), items: items}
	}
	if sw != nil {
		if sw.pending != nil {
			for i := range sw.pending {
				img.pending[i] = append([]*message(nil), sw.pending[i]...)
			}
		}
		if me.iter > 0 && me.iter < sw.segIters+sw.maxStage() {
			img.swp = &ckptSWP{base: sw.base, segIters: sw.segIters, cycles: me.iter,
				batch: int(sw.batch), levels: append([]int(nil), sw.levels...)}
		}
	}
	return img
}

// WriteCheckpoint serializes the engine's execution state at an iteration
// boundary. The engine must have completed a Run or a RestoreCheckpoint
// (steady state quiesced: all workers joined, channels drained). On
// pipelined engines the recorded iteration is derived from the cycle
// position (retired iterations), superseding the argument.
func (me *MappedEngine) WriteCheckpoint(w io.Writer, iteration int64) error {
	if !me.ready {
		return fmt.Errorf("exec: mapped engine has no state to checkpoint; run it (or restore into it) first")
	}
	if me.local != nil && me.iter > 0 {
		// A shard advances only its own partitions; the rest of the graph
		// is stale here. The coordinator assembles full images from the
		// shards' ExportShard slices instead.
		return fmt.Errorf("exec: a sharded engine holds only its local partitions' state; use ExportShard + AssembleShardImage")
	}
	return writeImage(w, me.Fingerprint(), me.image(iteration))
}

// RestoreCheckpoint loads a checkpoint image taken over the same graph and
// schedule (by a mapped or sequential engine), replacing the engine's
// execution state. It returns the logical iteration recorded at checkpoint
// time (on pipelined engines, the retired-iteration count of a skewed
// barrier). On error the engine's state is unspecified and it must not be
// run.
func (me *MappedEngine) RestoreCheckpoint(data []byte) (int64, error) {
	if !me.ready {
		// The constructor already initialized states and topology; the
		// image supersedes initialization effects, so only the schedule
		// counters are needed.
		me.initCounters()
		me.ready = true
	}
	if err := me.applyImage(data); err != nil {
		return 0, err
	}
	me.lastImg = append([]byte(nil), data...)
	if sw := me.swp; sw != nil {
		return sw.base + sw.completed(me.iter), nil
	}
	return me.iter, nil
}

// applyImage decodes, validates, and installs a checkpoint image.
func (me *MappedEngine) applyImage(data []byte) error {
	img, err := readImage(data, me.Fingerprint())
	if err != nil {
		return err
	}
	sw := me.swp
	if len(img.nodes) != len(me.nodes) {
		return fmt.Errorf("exec: checkpoint has %d nodes, engine has %d", len(img.nodes), len(me.nodes))
	}
	if len(img.edges) != len(me.G.Edges) {
		return fmt.Errorf("exec: checkpoint has %d edges, engine has %d", len(img.edges), len(me.G.Edges))
	}
	if img.swp != nil {
		if sw == nil {
			return fmt.Errorf("exec: checkpoint is a stage-skewed software-pipelining barrier; only a pipelined mapped engine can resume it")
		}
		if int64(img.swp.batch) != sw.batch {
			return fmt.Errorf("exec: checkpoint stage batch %d does not match the engine's %d", img.swp.batch, sw.batch)
		}
		for id, lv := range img.swp.levels {
			if lv != sw.levels[id] {
				return fmt.Errorf("exec: checkpoint stage level %d of node %d does not match the engine's %d", lv, id, sw.levels[id])
			}
		}
	}
	for i, msgs := range img.pending {
		if len(msgs) == 0 {
			continue
		}
		if sw == nil {
			return fmt.Errorf("exec: checkpoint carries pending teleport messages; the mapped engine needs a pipelined plan for messaging")
		}
		if sw.pending == nil {
			return fmt.Errorf("exec: checkpoint carries pending teleport messages for node %d, but this graph has no messaging", i)
		}
	}
	// Validate shapes and invariants fully before mutating anything.
	for i, rt := range me.nodes {
		in := img.nodes[i]
		if (in.state != nil) != (rt.state != nil) {
			return fmt.Errorf("exec: checkpoint state presence mismatch on node %s", rt.node.Name)
		}
		if in.fired < me.initFired[i] {
			return fmt.Errorf("exec: checkpoint fired count %d of node %s below its initialization count %d", in.fired, rt.node.Name, me.initFired[i])
		}
		if sw != nil {
			// Pipelined gating targets are derived from the segment position,
			// so firing counts must sit exactly on the stage schedule (skewed
			// images) or on a common iteration boundary (uniform images).
			want := me.initFired[i]
			if img.swp != nil {
				done := img.swp.cycles - int64(img.swp.levels[i])*int64(img.swp.batch)
				if done < 0 {
					done = 0
				}
				if done > img.swp.segIters {
					done = img.swp.segIters
				}
				want += (img.swp.base + done) * int64(me.Sch.Reps[i])
			} else {
				want += img.iteration * int64(me.Sch.Reps[i])
			}
			if in.fired != want {
				return fmt.Errorf("exec: checkpoint fired count %d of node %s off the pipelined stage schedule (want %d)", in.fired, rt.node.Name, want)
			}
		}
		if in.state == nil {
			continue
		}
		if len(in.state.Scalars) != len(rt.state.Scalars) {
			return fmt.Errorf("exec: node %s has %d scalar fields, checkpoint has %d", rt.node.Name, len(rt.state.Scalars), len(in.state.Scalars))
		}
		if len(in.state.Arrays) != len(rt.state.Arrays) {
			return fmt.Errorf("exec: node %s has %d array fields, checkpoint has %d", rt.node.Name, len(rt.state.Arrays), len(in.state.Arrays))
		}
		for k := range in.state.Arrays {
			if len(in.state.Arrays[k]) != len(rt.state.Arrays[k]) {
				return fmt.Errorf("exec: node %s array field %d has size %d, checkpoint has %d", rt.node.Name, k, len(rt.state.Arrays[k]), len(in.state.Arrays[k]))
			}
		}
	}
	staged := make([]int, len(me.G.Edges))
	for _, e := range me.G.Edges {
		ie := img.edges[e.ID]
		want := me.initPushed[e.ID] +
			(img.nodes[e.Src.ID].fired-me.initFired[e.Src.ID])*int64(e.Src.PushPort(e.SrcPort))
		if ie.pushed != want {
			return fmt.Errorf("exec: checkpoint edge %s pushed counter %d disagrees with its source's firing count (want %d)", e, ie.pushed, want)
		}
		if img.swp != nil && me.stage[e.ID] != nil {
			// Re-derive the producer's unflushed staging residue from the
			// flush schedule: everything produced since its last flush point.
			K := int64(img.swp.batch)
			iseg := img.swp.cycles - int64(img.swp.levels[e.Src.ID])*K
			if iseg < 0 {
				iseg = 0
			}
			if iseg > img.swp.segIters {
				iseg = img.swp.segIters
			}
			flushed := iseg / K * K
			if iseg == img.swp.segIters {
				flushed = iseg
			}
			staged[e.ID] = int(iseg-flushed) * e.Src.PushPort(e.SrcPort)
			if staged[e.ID] > len(ie.items) {
				return fmt.Errorf("exec: checkpoint edge %s buffers %d items, fewer than its %d-item staging residue", e, len(ie.items), staged[e.ID])
			}
		}
	}
	for i, rt := range me.nodes {
		in := img.nodes[i]
		rt.fired = in.fired
		if in.state != nil {
			rt.state.Scalars = in.state.Scalars
			rt.state.Arrays = in.state.Arrays
		}
	}
	for _, e := range me.G.Edges {
		ie := img.edges[e.ID]
		split := len(ie.items) - staged[e.ID]
		q := me.queues[e.ID]
		q.buf = append([]float64(nil), ie.items[:split]...)
		q.head = 0
		if st := me.stage[e.ID]; st != nil {
			st.buf = append([]float64(nil), ie.items[split:]...)
			st.head = 0
		}
		if ch := me.chans[e.ID]; ch != nil {
			for len(ch) > 0 {
				<-ch
			}
		}
	}
	if sw != nil {
		if sw.pending != nil {
			for i := range sw.pending {
				sw.pending[i] = append([]*message(nil), img.pending[i]...)
			}
		}
		for i := range sw.partial {
			sw.partial[i] = 0
		}
		switch {
		case img.swp != nil:
			sw.base, sw.segIters = img.swp.base, img.swp.segIters
			me.iter = img.swp.cycles
		case sw.segIters > 0 && img.iteration == sw.base:
			// Rollback to the running segment's start barrier.
			me.iter = 0
		case sw.segIters > 0 && img.iteration == sw.base+sw.segIters:
			me.iter = sw.segIters + sw.maxStage()
		default:
			// A foreign uniform image starts a fresh segment here; the next
			// RunFromCheckpoint sets the segment length.
			sw.base, sw.segIters = img.iteration, 0
			me.iter = 0
		}
		return nil
	}
	me.iter = img.iteration
	return nil
}

// RunFromCheckpoint restores data into the engine and runs the remaining
// steady-state iterations up to total (the run's original iteration
// count). Initialization is not replayed — its effects are part of the
// checkpointed state. A skewed pipelined checkpoint resumes its original
// segment, so total must equal that segment's final iteration count.
func (me *MappedEngine) RunFromCheckpoint(data []byte, total int) error {
	it, err := me.RestoreCheckpoint(data)
	if err != nil {
		return err
	}
	if int64(total) < it {
		return fmt.Errorf("exec: checkpoint is at iteration %d, past the requested total %d", it, total)
	}
	if sw := me.swp; sw != nil {
		if sw.segIters > 0 {
			if int64(total) != sw.base+sw.segIters {
				return fmt.Errorf("exec: pipelined checkpoint resumes a segment running to iteration %d; caller asked for %d", sw.base+sw.segIters, total)
			}
		} else {
			sw.segIters = int64(total) - sw.base
			me.iter = 0
		}
		return me.runCycles()
	}
	return me.runSteady(total - int(it))
}
