package exec

import (
	"fmt"
	"io"
)

// Mapped checkpoints reuse the sequential engine's image format over the
// same (rewritten) graph and schedule, so the fingerprints and byte images
// are interchangeable: a checkpoint written by a mapped run restores into
// a sequential engine over the mapped graph and vice versa. The mapped
// engine does not track per-edge pushed/popped counters at runtime (the
// queues are drained batchwise); they are reconstructed from firing
// counts, which is exact because every firing of an edge's source pushes a
// static rate onto it:
//
//	pushed(e) = initPushed(e) + (fired(src) - initFired(src)) * rate(e)
//	popped(e) = pushed(e) - buffered(e)
//
// where initFired/initPushed are the schedule's initialization totals.

// Fingerprint hashes the engine's graph and schedule structure; it equals
// the sequential engine's fingerprint over the same graph and schedule.
func (me *MappedEngine) Fingerprint() uint64 { return graphFingerprint(me.G, me.Sch) }

// initCounters derives the post-initialization firing and push totals from
// the schedule. These let checkpoints be written and validated without
// replaying initialization.
func (me *MappedEngine) initCounters() {
	me.initFired = make([]int64, len(me.G.Nodes))
	for _, n := range me.G.Nodes {
		me.initFired[n.ID] = int64(me.Sch.InitReps[n.ID])
	}
	me.initPushed = make([]int64, len(me.G.Edges))
	for _, e := range me.G.Edges {
		me.initPushed[e.ID] = me.initFired[e.Src.ID] * int64(e.Src.PushPort(e.SrcPort))
	}
}

// image captures the engine-neutral checkpoint at the current barrier.
func (me *MappedEngine) image(iteration int64) *ckptImage {
	img := &ckptImage{
		iteration: iteration,
		nodes:     make([]ckptNode, len(me.nodes)),
		edges:     make([]ckptEdge, len(me.G.Edges)),
		pending:   make([][]*message, len(me.nodes)),
	}
	for i, rt := range me.nodes {
		img.nodes[i] = ckptNode{fired: rt.fired, state: rt.state}
		img.firings += rt.fired
	}
	for _, e := range me.G.Edges {
		q := me.queues[e.ID]
		items := make([]float64, q.Len())
		for i := range items {
			items[i] = q.Peek(i)
		}
		pushed := me.initPushed[e.ID] +
			(me.nodes[e.Src.ID].fired-me.initFired[e.Src.ID])*int64(e.Src.PushPort(e.SrcPort))
		img.edges[e.ID] = ckptEdge{pushed: pushed, popped: pushed - int64(len(items)), items: items}
	}
	return img
}

// WriteCheckpoint serializes the engine's execution state at an iteration
// boundary. The engine must have completed a Run or a RestoreCheckpoint
// (steady state quiesced: all workers joined, channels drained).
func (me *MappedEngine) WriteCheckpoint(w io.Writer, iteration int64) error {
	if !me.ready {
		return fmt.Errorf("exec: mapped engine has no state to checkpoint; run it (or restore into it) first")
	}
	return writeImage(w, me.Fingerprint(), me.image(iteration))
}

// RestoreCheckpoint loads a checkpoint image taken over the same graph and
// schedule (by a mapped or sequential engine), replacing the engine's
// execution state. It returns the iteration recorded at checkpoint time.
// On error the engine's state is unspecified and it must not be run.
func (me *MappedEngine) RestoreCheckpoint(data []byte) (int64, error) {
	if !me.ready {
		// The constructor already initialized states and topology; the
		// image supersedes initialization effects, so only the schedule
		// counters are needed.
		me.initCounters()
		me.ready = true
	}
	if err := me.applyImage(data); err != nil {
		return 0, err
	}
	me.lastImg = append([]byte(nil), data...)
	return me.iter, nil
}

// applyImage decodes, validates, and installs a checkpoint image.
func (me *MappedEngine) applyImage(data []byte) error {
	img, err := readImage(data, me.Fingerprint())
	if err != nil {
		return err
	}
	if len(img.nodes) != len(me.nodes) {
		return fmt.Errorf("exec: checkpoint has %d nodes, engine has %d", len(img.nodes), len(me.nodes))
	}
	if len(img.edges) != len(me.G.Edges) {
		return fmt.Errorf("exec: checkpoint has %d edges, engine has %d", len(img.edges), len(me.G.Edges))
	}
	for _, msgs := range img.pending {
		if len(msgs) > 0 {
			return fmt.Errorf("exec: checkpoint carries pending teleport messages; the mapped engine does not support messaging")
		}
	}
	// Validate shapes and invariants fully before mutating anything.
	for i, rt := range me.nodes {
		in := img.nodes[i]
		if (in.state != nil) != (rt.state != nil) {
			return fmt.Errorf("exec: checkpoint state presence mismatch on node %s", rt.node.Name)
		}
		if in.fired < me.initFired[i] {
			return fmt.Errorf("exec: checkpoint fired count %d of node %s below its initialization count %d", in.fired, rt.node.Name, me.initFired[i])
		}
		if in.state == nil {
			continue
		}
		if len(in.state.Scalars) != len(rt.state.Scalars) {
			return fmt.Errorf("exec: node %s has %d scalar fields, checkpoint has %d", rt.node.Name, len(rt.state.Scalars), len(in.state.Scalars))
		}
		if len(in.state.Arrays) != len(rt.state.Arrays) {
			return fmt.Errorf("exec: node %s has %d array fields, checkpoint has %d", rt.node.Name, len(rt.state.Arrays), len(in.state.Arrays))
		}
		for k := range in.state.Arrays {
			if len(in.state.Arrays[k]) != len(rt.state.Arrays[k]) {
				return fmt.Errorf("exec: node %s array field %d has size %d, checkpoint has %d", rt.node.Name, k, len(rt.state.Arrays[k]), len(in.state.Arrays[k]))
			}
		}
	}
	for _, e := range me.G.Edges {
		ie := img.edges[e.ID]
		want := me.initPushed[e.ID] +
			(img.nodes[e.Src.ID].fired-me.initFired[e.Src.ID])*int64(e.Src.PushPort(e.SrcPort))
		if ie.pushed != want {
			return fmt.Errorf("exec: checkpoint edge %s pushed counter %d disagrees with its source's firing count (want %d)", e, ie.pushed, want)
		}
	}
	for i, rt := range me.nodes {
		in := img.nodes[i]
		rt.fired = in.fired
		if in.state != nil {
			rt.state.Scalars = in.state.Scalars
			rt.state.Arrays = in.state.Arrays
		}
	}
	for _, e := range me.G.Edges {
		ie := img.edges[e.ID]
		q := me.queues[e.ID]
		q.buf = append([]float64(nil), ie.items...)
		q.head = 0
		// Drop any cross-worker residue from an aborted epoch.
		if st := me.stage[e.ID]; st != nil {
			st.buf, st.head = nil, 0
		}
		if ch := me.chans[e.ID]; ch != nil {
			for len(ch) > 0 {
				<-ch
			}
		}
	}
	me.iter = img.iteration
	return nil
}

// RunFromCheckpoint restores data into the engine and runs the remaining
// steady-state iterations up to total (the run's original iteration
// count). Initialization is not replayed — its effects are part of the
// checkpointed state.
func (me *MappedEngine) RunFromCheckpoint(data []byte, total int) error {
	it, err := me.RestoreCheckpoint(data)
	if err != nil {
		return err
	}
	if int64(total) < it {
		return fmt.Errorf("exec: checkpoint is at iteration %d, past the requested total %d", it, total)
	}
	return me.runSteady(total - int(it))
}
