package exec

import (
	"testing"

	"streamit/internal/apps"
)

// BenchmarkEngineFMRadio measures sequential-runtime throughput on the FM
// radio (steady iterations per op).
func BenchmarkEngineFMRadio(b *testing.B) {
	e, err := New(apps.FMRadio(6, 32))
	if err != nil {
		b.Fatal(err)
	}
	if err := e.RunInit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.RunSteady(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTeleport measures the dynamic (message-constrained)
// scheduler against the static one.
func BenchmarkEngineTeleport(b *testing.B) {
	e, err := New(apps.FreqHoppingRadio(true))
	if err != nil {
		b.Fatal(err)
	}
	if err := e.RunInit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.RunSteady(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChannelOps measures the ring buffer.
func BenchmarkChannelOps(b *testing.B) {
	ch := newChannel(64)
	for i := 0; i < 32; i++ {
		ch.Push(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Push(float64(i))
		_ = ch.Peek(3)
		ch.Pop()
	}
}
