package exec

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Node wait states reported by the watchdog.
const (
	stRunning  = "running"
	stWaitRecv = "waiting recv"
	stWaitSend = "waiting send"
	stInWork   = "in work"
	stStalled  = "stalled (injected)"
	stDone     = "done"
)

// nodeStatus is one node's observable wait state, updated by its goroutine
// around every potentially-blocking operation and sampled by the watchdog
// when progress stops.
type nodeStatus struct {
	name   string
	worker int // mapped-engine worker running the node (-1: not mapped)

	mu        sync.Mutex
	state     string
	edge      string // "Src->Dst" when blocked on a tape
	buffered  int    // items visible to the node on that tape
	blockedOn int    // node ID this node waits on (-1: none)
	since     time.Time
}

func newNodeStatus(name string) *nodeStatus {
	return &nodeStatus{name: name, worker: -1, state: stRunning, blockedOn: -1, since: time.Now()}
}

// set records a (possibly blocking) state transition.
func (s *nodeStatus) set(state, edge string, buffered, blockedOn int) {
	s.mu.Lock()
	s.state, s.edge, s.buffered, s.blockedOn = state, edge, buffered, blockedOn
	s.since = time.Now()
	s.mu.Unlock()
}

// snapshot returns the current state as a FilterStatus.
func (s *nodeStatus) snapshot() (FilterStatus, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return FilterStatus{
		Name:     s.name,
		Worker:   s.worker,
		State:    s.state,
		Edge:     s.edge,
		Buffered: s.buffered,
		Blocked:  time.Since(s.since),
	}, s.blockedOn
}

// watchdog detects engine-wide stalls: it samples a shared progress
// counter (incremented on every item/batch moved and firing completed)
// and, when the counter freezes for the configured interval, collects
// every node's wait state, traces the wait-cycle, and aborts the run.
type watchdog struct {
	engine   string // "parallel" or "dynamic"
	interval time.Duration
	progress *int64
	statuses []*nodeStatus
	stop     func() // aborts the run (idempotent)

	quit chan struct{}
	wg   sync.WaitGroup

	mu  sync.Mutex
	err *DeadlockError
}

// newWatchdog starts the monitor goroutine. progress must be updated with
// atomic adds; statuses is indexed by node ID (nil entries are ignored).
func newWatchdog(engine string, interval time.Duration, progress *int64, statuses []*nodeStatus, stop func()) *watchdog {
	w := &watchdog{
		engine: engine, interval: interval, progress: progress,
		statuses: statuses, stop: stop, quit: make(chan struct{}),
	}
	w.wg.Add(1)
	go w.run()
	return w
}

func (w *watchdog) run() {
	defer w.wg.Done()
	tick := w.interval / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	last := atomic.LoadInt64(w.progress)
	lastChange := time.Now()
	for {
		select {
		case <-w.quit:
			return
		case <-t.C:
		}
		cur := atomic.LoadInt64(w.progress)
		if cur != last {
			last, lastChange = cur, time.Now()
			continue
		}
		if time.Since(lastChange) < w.interval {
			continue
		}
		// A frozen counter alone is not proof of a wedge: a node can
		// legitimately compute for longer than the interval without moving
		// an item. Declare deadlock at the interval only when every live
		// node is blocked on a tape; while something still reports running,
		// hold off until a generous multiple has passed (a truly wedged
		// kernel never moves the counter again, so it is still caught).
		if w.anyRunning() && time.Since(lastChange) < 4*w.interval {
			continue
		}
		w.mu.Lock()
		w.err = w.report()
		w.mu.Unlock()
		w.stop()
		return
	}
}

// anyRunning reports whether any node claims to be computing (rather than
// blocked on a tape, stalled, or done).
func (w *watchdog) anyRunning() bool {
	for _, st := range w.statuses {
		if st == nil {
			continue
		}
		st.mu.Lock()
		s := st.state
		st.mu.Unlock()
		if s == stRunning || s == stInWork {
			return true
		}
	}
	return false
}

// close stops the monitor and waits for it; the run finished (or aborted).
func (w *watchdog) close() {
	select {
	case <-w.quit:
	default:
		close(w.quit)
	}
	w.wg.Wait()
}

// error returns the deadlock report if the watchdog fired, else nil.
// (Typed nil must not escape into a plain error.)
func (w *watchdog) error() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		return nil
	}
	return w.err
}

// report builds the deadlock description from the sampled statuses.
func (w *watchdog) report() *DeadlockError {
	e := &DeadlockError{Engine: w.engine, Interval: w.interval}
	blockedOn := make(map[int]int) // node ID -> node ID it waits on
	names := make(map[int]string)
	for id, st := range w.statuses {
		if st == nil {
			continue
		}
		snap, on := st.snapshot()
		names[id] = snap.Name
		if snap.State == stRunning || snap.State == stDone {
			continue
		}
		e.Blocked = append(e.Blocked, snap)
		if on >= 0 {
			blockedOn[id] = on
		}
	}
	e.Cycle = traceWaitCycle(blockedOn, names)
	return e
}

// traceWaitCycle follows blocked-on edges from some blocked node; if the
// walk revisits a node, the loop portion is the deadlock cycle. With no
// cycle (a stall, not a deadlock), the longest chain found is returned so
// the error still names who waits on whom.
func traceWaitCycle(blockedOn map[int]int, names map[int]string) []string {
	starts := make([]int, 0, len(blockedOn))
	for id := range blockedOn {
		starts = append(starts, id)
	}
	sort.Ints(starts) // deterministic reports
	var bestChain []string
	for _, id := range starts {
		visited := map[int]int{} // node -> position in path
		var path []int
		n := id
		for {
			if pos, seen := visited[n]; seen {
				// Cycle: path[pos:] plus the closing node.
				var cyc []string
				for _, p := range path[pos:] {
					cyc = append(cyc, names[p])
				}
				cyc = append(cyc, names[n])
				return cyc
			}
			visited[n] = len(path)
			path = append(path, n)
			next, ok := blockedOn[n]
			if !ok {
				break
			}
			n = next
		}
		if len(path) > len(bestChain) {
			bestChain = nil
			for _, p := range path {
				bestChain = append(bestChain, names[p])
			}
		}
	}
	return bestChain
}
