package exec

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// mappedBuild is one rewritten application instance: the flat rewritten
// graph and schedule a mapped engine runs, its worker assignment, and the
// collector slices its sinks were swapped for. Engines built over the same
// mappedBuild share the collectors, so an interrupted run plus its resumed
// continuation append to the same output stream.
type mappedBuild struct {
	g2      *ir.Graph
	s2      *sched.Schedule
	assign  []int
	workers int
	outs    []*[]float64
	stages  *partition.StagePlan // non-nil for pipelined strategies
}

func buildMapped(tb testing.TB, build func() *ir.Program, strat partition.Strategy) *mappedBuild {
	tb.Helper()
	prog := build()
	var fs []*ir.Filter
	var outs []*[]float64
	prog.Top = swapSinks(prog.Top, &fs, &outs)
	g, err := ir.Flatten(prog)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := partition.BuildExecPlan(prog, g, s, partition.ExecPlanOptions{Strategy: strat, Workers: 4})
	if err != nil {
		tb.Fatal(err)
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		tb.Fatalf("flattening rewritten program: %v", err)
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		tb.Fatalf("scheduling rewritten program: %v", err)
	}
	mb := &mappedBuild{g2: g2, s2: s2, assign: plan.Assign(g2, s2), workers: plan.Workers, outs: outs}
	if plan.Pipelined {
		st, err := partition.PipelineStages(g2)
		if err != nil {
			tb.Fatalf("staging rewritten program: %v", err)
		}
		mb.stages = st
	}
	return mb
}

func (mb *mappedBuild) engine(tb testing.TB, opts Options) *MappedEngine {
	tb.Helper()
	if mb.stages != nil {
		opts.Stages = mb.stages.Levels
		opts.StageClusters = mb.stages.Clusters
	}
	me, err := NewMappedOpts(mb.g2, mb.s2, mb.assign, mb.workers, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return me
}

func mappedCkptBytes(tb testing.TB, me *MappedEngine, iteration int64) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := me.WriteCheckpoint(&buf, iteration); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func compareOuts(t *testing.T, want, got []*[]float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: sink walks diverged: %d vs %d collectors", label, len(want), len(got))
	}
	for i := range want {
		wv, gv := *want[i], *got[i]
		if len(wv) != len(gv) {
			t.Fatalf("%s: sink %d: %d items vs %d", label, i, len(wv), len(gv))
		}
		for j := range wv {
			if wv[j] != gv[j] {
				t.Fatalf("%s: sink %d item %d: %v vs %v", label, i, j, wv[j], gv[j])
			}
		}
	}
}

// TestMappedCheckpointConformance: on every app, strategy, and backend, a
// mapped run checkpointed at the coordinated barrier and resumed in a
// fresh mapped engine reaches a final state byte-identical to an
// uninterrupted run — and its sink output streams are bit-identical too.
// Byte equality of the final image covers every queue's contents and
// counters, every filter field, and every firing count.
func TestMappedCheckpointConformance(t *testing.T) {
	strategies := []partition.Strategy{partition.StratTask, partition.StratFineData,
		partition.StratCoarseData, partition.StratSWP, partition.StratCombined}
	backends := []Backend{BackendVM, BackendInterp}
	for _, app := range apps.Suite() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for _, strat := range strategies {
				for _, backend := range backends {
					t.Run(fmt.Sprintf("%s/%v", strat, backend), func(t *testing.T) {
						runMappedCheckpointConformance(t, app, strat, backend)
					})
				}
			}
		})
	}
}

func runMappedCheckpointConformance(t *testing.T, app apps.App, strat partition.Strategy, backend Backend) {
	t.Helper()
	const iters, k = 4, 2

	// Uninterrupted reference run.
	refB := buildMapped(t, app.Build, strat)
	ref := refB.engine(t, Options{Backend: backend})
	if err := ref.Run(iters); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := mappedCkptBytes(t, ref, iters)

	// Interrupted run: checkpoint at the barrier after k iterations, then
	// resume the image in a fresh engine over the same build (so both
	// halves append to the same collectors).
	intB := buildMapped(t, app.Build, strat)
	first := intB.engine(t, Options{Backend: backend})
	if err := first.Run(k); err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	img := mappedCkptBytes(t, first, k)
	resumed := intB.engine(t, Options{Backend: backend})
	if err := resumed.RunFromCheckpoint(img, iters); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := mappedCkptBytes(t, resumed, iters); !bytes.Equal(want, got) {
		t.Fatalf("resumed final state differs from uninterrupted run (%d vs %d bytes)", len(want), len(got))
	}
	compareOuts(t, refB.outs, intB.outs, "resumed output")
}

// TestMappedCheckpointCrossEngine: mapped and sequential checkpoints over
// the same rewritten graph are byte-interchangeable — a mapped image
// restores into a sequential engine (and vice versa), and both resumed
// runs land bit-identical to an uninterrupted reference.
func TestMappedCheckpointCrossEngine(t *testing.T) {
	const iters, k = 4, 2
	build := func() *ir.Program { return apps.FMRadio(4, 16) }
	const strat = partition.StratCoarseData

	// Uninterrupted sequential reference over the rewritten graph.
	refB := buildMapped(t, build, strat)
	ref, err := NewFromGraphBackend(refB.g2, refB.s2, BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(iters); err != nil {
		t.Fatal(err)
	}
	want := checkpointBytes(t, ref, iters)

	// Mapped image -> sequential engine.
	mb := buildMapped(t, build, strat)
	me := mb.engine(t, Options{})
	if err := me.Run(k); err != nil {
		t.Fatal(err)
	}
	img := mappedCkptBytes(t, me, k)
	sb := buildMapped(t, build, strat)
	se, err := NewFromGraphBackend(sb.g2, sb.s2, BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.RunFromCheckpoint(img, iters); err != nil {
		t.Fatalf("sequential resume of mapped image: %v", err)
	}
	if got := checkpointBytes(t, se, iters); !bytes.Equal(want, got) {
		t.Fatal("sequential resume of a mapped checkpoint diverged from the uninterrupted run")
	}

	// Sequential image -> mapped engine.
	qb := buildMapped(t, build, strat)
	qe, err := NewFromGraphBackend(qb.g2, qb.s2, BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	if err := qe.RunInit(); err != nil {
		t.Fatal(err)
	}
	if err := qe.RunSteady(k); err != nil {
		t.Fatal(err)
	}
	simg := checkpointBytes(t, qe, k)
	wb := buildMapped(t, build, strat)
	we := wb.engine(t, Options{})
	if err := we.RunFromCheckpoint(simg, iters); err != nil {
		t.Fatalf("mapped resume of sequential image: %v", err)
	}
	if got := mappedCkptBytes(t, we, iters); !bytes.Equal(want, got) {
		t.Fatal("mapped resume of a sequential checkpoint diverged from the uninterrupted run")
	}
}

// midTarget picks the first mid-graph filter (one with both input and
// output edges) of a rewritten graph and a firing index that lands in the
// second steady iteration, so injected faults hit a filter whose failure
// propagates both up- and downstream.
func midTarget(t *testing.T, g *ir.Graph, s *sched.Schedule) (string, int64) {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter && len(n.In) > 0 && len(n.Out) > 0 {
			return n.Name, int64(s.InitReps[n.ID] + s.Reps[n.ID])
		}
	}
	t.Fatal("no mid-graph filter in rewritten graph")
	return "", 0
}

// TestMappedFaultPolicyMatrix: every fault kind under every recovery
// policy produces sink output bit-identical to the supervised sequential
// engine over the same rewritten graph — the mapped engine's rollback,
// skip-with-zeros, and state-reset semantics match the reference engine
// exactly, worker parallelism notwithstanding.
func TestMappedFaultPolicyMatrix(t *testing.T) {
	kinds := []string{"panic", "stall", "corrupt"}
	policies := []string{"retry", "skip", "restart"}
	for _, app := range apps.Suite()[:3] {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for _, kind := range kinds {
				for _, policy := range policies {
					t.Run(kind+"/"+policy, func(t *testing.T) {
						runMappedFaultPolicy(t, app, partition.StratTask, kind, policy)
					})
				}
			}
		})
	}
}

// TestMappedSWPFaultPolicyMatrix: the same fault-kind × recovery-policy
// matrix on pipelined plans — the injected filter faults land mid-segment,
// where stages are skewed, and every policy must still land bit-identical
// to the supervised sequential engine over the same rewritten graph.
func TestMappedSWPFaultPolicyMatrix(t *testing.T) {
	kinds := []string{"panic", "stall", "corrupt"}
	policies := []string{"retry", "skip", "restart"}
	for _, app := range apps.Suite()[:2] {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for _, kind := range kinds {
				for _, policy := range policies {
					t.Run(kind+"/"+policy, func(t *testing.T) {
						runMappedFaultPolicy(t, app, partition.StratSWP, kind, policy)
					})
				}
			}
		})
	}
}

func runMappedFaultPolicy(t *testing.T, app apps.App, strat partition.Strategy, kind, policy string) {
	t.Helper()
	const iters = 4
	mb := buildMapped(t, app.Build, strat)
	target, firing := midTarget(t, mb.g2, mb.s2)
	spec := fmt.Sprintf("%s:%s@%d", kind, target, firing)

	me := mb.engine(t, Options{Faults: mustPlan(t, spec), OnError: mustPolicies(t, policy)})
	if err := me.Run(iters); err != nil {
		t.Fatalf("mapped run under %s: %v", spec, err)
	}
	var injected int64
	for _, st := range me.Degraded() {
		injected += st.Injected
	}
	if injected == 0 {
		t.Fatalf("mapped run never injected %s", spec)
	}

	sb := buildMapped(t, app.Build, strat)
	se, err := NewFromGraphOpts(sb.g2, sb.s2, Options{Faults: mustPlan(t, spec), OnError: mustPolicies(t, policy)})
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Run(iters); err != nil {
		t.Fatalf("sequential run under %s: %v", spec, err)
	}
	compareOuts(t, sb.outs, mb.outs, kind+"/"+policy)
}

// recoveryObserver buffers fault, recovery, and checkpoint instants so
// tests assert on observed events instead of timing.
func recoveryObserver() (*obs.Recorder, func() []obs.Event) {
	rec := obs.NewRecorder()
	var mu sync.Mutex
	var events []obs.Event
	rec.OnEvent(func(ev obs.Event) {
		switch ev.Cat {
		case "fault", "recovery", "checkpoint":
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	})
	return rec, func() []obs.Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]obs.Event(nil), events...)
	}
}

// TestMappedWorkerCrashRecovery: a worker crash mid-run rolls back to the
// last coordinated checkpoint, re-plans the dead worker's partition onto
// the survivors, and completes with output bit-identical to a clean
// sequential run. The degradation is visible in the worker stats, the
// supervision report, and the obs trace.
func TestMappedWorkerCrashRecovery(t *testing.T) {
	const iters = 8
	clean, _, err := runSeqFault(t, gainFilter("Double", 2), iters, Options{})
	if err != nil {
		t.Fatal(err)
	}

	g, s, got := faultPipeline(t, gainFilter("Double", 2))
	rec, snap := recoveryObserver()
	assign := make([]int, len(g.Nodes))
	for i := range assign {
		assign[i] = i % 3
	}
	me, err := NewMappedOpts(g, s, assign, 3, Options{
		Faults: mustPlan(t, "crash:worker1@2"),
		Trace:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := me.Run(iters); err != nil {
		t.Fatalf("crashed run did not recover: %v", err)
	}

	if len(*got) != len(clean) {
		t.Fatalf("recovered run produced %d items, clean run %d", len(*got), len(clean))
	}
	for i := range clean {
		if (*got)[i] != clean[i] {
			t.Fatalf("item %d differs after recovery: %v vs %v", i, (*got)[i], clean[i])
		}
	}
	if me.Workers != 2 {
		t.Errorf("engine degraded to %d workers, want 2", me.Workers)
	}
	st := me.Degraded()["worker1"]
	if st.Injected != 1 || st.Crashes != 1 {
		t.Errorf("worker1 stats = %+v, want 1 injection and 1 crash", st)
	}
	rep := me.SupervisionReport()
	if !strings.Contains(rep, "crashes=1") {
		t.Errorf("supervision report does not count the crash:\n%s", rep)
	}
	var sawFault, sawRecovery, sawCheckpoint bool
	for _, ev := range snap() {
		switch {
		case ev.Cat == "fault" && ev.Name == "fault: crash":
			sawFault = true
		case ev.Cat == "recovery":
			sawRecovery = true
		case ev.Cat == "checkpoint":
			sawCheckpoint = true
		}
	}
	if !sawFault || !sawRecovery || !sawCheckpoint {
		t.Errorf("trace missing events: fault=%v recovery=%v checkpoint=%v", sawFault, sawRecovery, sawCheckpoint)
	}
}

// TestMappedWorkerCrashReplanHook: crash recovery prefers the installed
// Replan hook's assignment over the built-in least-loaded fallback.
func TestMappedWorkerCrashReplanHook(t *testing.T) {
	const iters = 6
	clean, _, err := runSeqFault(t, gainFilter("Double", 2), iters, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, s, got := faultPipeline(t, gainFilter("Double", 2))
	assign := make([]int, len(g.Nodes))
	for i := range assign {
		assign[i] = i % 3
	}
	me, err := NewMappedOpts(g, s, assign, 3, Options{Faults: mustPlan(t, "crash:worker2@1")})
	if err != nil {
		t.Fatal(err)
	}
	replanned := 0
	me.Replan = func(workers int) []int {
		replanned++
		out := make([]int, len(g.Nodes))
		for i := range out {
			out[i] = i % workers
		}
		return out
	}
	if err := me.Run(iters); err != nil {
		t.Fatalf("crashed run did not recover: %v", err)
	}
	if replanned != 1 {
		t.Errorf("Replan hook called %d times, want 1", replanned)
	}
	if len(*got) != len(clean) {
		t.Fatalf("recovered run produced %d items, clean run %d", len(*got), len(clean))
	}
	for i := range clean {
		if (*got)[i] != clean[i] {
			t.Fatalf("item %d differs after replanned recovery: %v vs %v", i, (*got)[i], clean[i])
		}
	}
}

// TestMappedWorkerSlowFault: a slow fault completes the run with correct
// output and shows up in the degradation stats — graceful degradation,
// not failure.
func TestMappedWorkerSlowFault(t *testing.T) {
	const iters = 6
	clean, _, err := runSeqFault(t, gainFilter("Double", 2), iters, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, s, got := faultPipeline(t, gainFilter("Double", 2))
	assign := make([]int, len(g.Nodes))
	for i := range assign {
		assign[i] = i % 3
	}
	me, err := NewMappedOpts(g, s, assign, 3, Options{Faults: mustPlan(t, "slow:worker0@1")})
	if err != nil {
		t.Fatal(err)
	}
	if err := me.Run(iters); err != nil {
		t.Fatalf("slowed run failed: %v", err)
	}
	for i := range clean {
		if (*got)[i] != clean[i] {
			t.Fatalf("item %d differs under slow fault: %v vs %v", i, (*got)[i], clean[i])
		}
	}
	st := me.Degraded()["worker0"]
	if st.Injected != 1 || st.Slowed != 1 {
		t.Errorf("worker0 stats = %+v, want 1 injection and 1 slowdown", st)
	}
	if rep := me.SupervisionReport(); !strings.Contains(rep, "slowed=1") {
		t.Errorf("supervision report does not count the slowdown:\n%s", rep)
	}
}

// TestMappedWorkerStallWatchdog: an injected worker stall under the
// default fail policy wedges the engine; the watchdog aborts with a
// *DeadlockError that attributes each blocked filter to its worker.
func TestMappedWorkerStallWatchdog(t *testing.T) {
	g, s, _ := faultPipeline(t, gainFilter("Double", 2))
	assign := make([]int, len(g.Nodes))
	for i := range assign {
		assign[i] = i % 3
	}
	me, err := NewMappedOpts(g, s, assign, 3, Options{
		Faults:   mustPlan(t, "stall:worker1@1"),
		Watchdog: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = me.Run(64)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want a *DeadlockError", err)
	}
	if de.Engine != "mapped" {
		t.Errorf("deadlock engine = %q, want mapped", de.Engine)
	}
	if !strings.Contains(err.Error(), "worker 1") {
		t.Errorf("deadlock report does not attribute the stall to worker 1:\n%v", err)
	}
}

// TestMappedCrashNoSurvivors: crashing the only worker is not recoverable
// and must surface a structured error, not hang or panic.
func TestMappedCrashNoSurvivors(t *testing.T) {
	g, s, _ := faultPipeline(t, gainFilter("Double", 2))
	assign := make([]int, len(g.Nodes))
	me, err := NewMappedOpts(g, s, assign, 1, Options{Faults: mustPlan(t, "crash:worker0@1")})
	if err != nil {
		t.Fatal(err)
	}
	err = me.Run(8)
	if err == nil || !strings.Contains(err.Error(), "no surviving workers") {
		t.Fatalf("err = %v, want a no-surviving-workers failure", err)
	}
}

// TestMappedQueueDepth: a minimal queue depth of one batch still conforms
// bit-exactly (backpressure changes scheduling, never values), and
// negative depths are rejected at construction.
func TestMappedQueueDepth(t *testing.T) {
	const iters = 4
	build := func() *ir.Program { return apps.FMRadio(4, 16) }
	mb := buildMapped(t, build, partition.StratCoarseData)
	me := mb.engine(t, Options{QueueDepth: 1})
	if err := me.Run(iters); err != nil {
		t.Fatalf("depth-1 run: %v", err)
	}
	sb := buildMapped(t, build, partition.StratCoarseData)
	se, err := NewFromGraphBackend(sb.g2, sb.s2, BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Run(iters); err != nil {
		t.Fatal(err)
	}
	compareOuts(t, sb.outs, mb.outs, "depth-1")

	if _, err := NewMappedOpts(mb.g2, mb.s2, mb.assign, mb.workers, Options{QueueDepth: -1}); err == nil {
		t.Fatal("negative queue depth accepted")
	}
	if _, err := NewMappedOpts(mb.g2, mb.s2, mb.assign, mb.workers, Options{CheckpointEvery: -1}); err == nil {
		t.Fatal("negative checkpoint interval accepted")
	}
}

// TestMappedCheckpointGolden pins the on-disk format: a mapped checkpoint
// of a fixed app and strategy at iteration 2 must match the committed
// golden image byte for byte, and the golden image must restore and run.
// Regenerate (only on an intentional format change) with
// STREAMIT_UPDATE_GOLDEN=1 go test ./internal/exec -run MappedCheckpointGolden.
func TestMappedCheckpointGolden(t *testing.T) {
	build := func() *ir.Program { return apps.FMRadio(2, 8) }
	mb := buildMapped(t, build, partition.StratCoarseData)
	me := mb.engine(t, Options{})
	if err := me.Run(2); err != nil {
		t.Fatal(err)
	}
	img := mappedCkptBytes(t, me, 2)

	path := filepath.Join("testdata", "mapped_fmradio_taskdata.ckpt")
	if os.Getenv("STREAMIT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(img))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden image (regenerate with STREAMIT_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(want, img) {
		t.Fatalf("mapped checkpoint format drifted from the golden image (%d vs %d bytes); this breaks saved checkpoints", len(img), len(want))
	}
	fresh := buildMapped(t, build, partition.StratCoarseData).engine(t, Options{})
	if err := fresh.RunFromCheckpoint(want, 3); err != nil {
		t.Fatalf("golden image does not restore: %v", err)
	}
}

// TestMappedChaosSoak: randomized fault plans on mapped runs. Random
// filter faults under a skip policy must keep the mapped engine
// bit-identical to the supervised sequential engine (both inject the same
// deterministic schedule); adding a worker crash must still complete on
// the survivors with the crash accounted for.
func TestMappedChaosSoak(t *testing.T) {
	const iters = 6
	app := apps.Suite()[0]
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := fmt.Sprintf("rand:3@%d", seed)
			mb := buildMapped(t, app.Build, partition.StratFineData)
			me := mb.engine(t, Options{Faults: mustPlan(t, spec), OnError: mustPolicies(t, "skip")})
			if err := me.Run(iters); err != nil {
				t.Fatalf("chaos run %s: %v", spec, err)
			}
			sb := buildMapped(t, app.Build, partition.StratFineData)
			se, err := NewFromGraphOpts(sb.g2, sb.s2, Options{Faults: mustPlan(t, spec), OnError: mustPolicies(t, "skip")})
			if err != nil {
				t.Fatal(err)
			}
			if err := se.Run(iters); err != nil {
				t.Fatalf("sequential chaos run %s: %v", spec, err)
			}
			compareOuts(t, sb.outs, mb.outs, spec)

			// Random faults plus a worker crash: recovery converges and the
			// run completes on the surviving workers. (No bit-equality claim:
			// filter faults consumed in the aborted epoch are one-shot and
			// are not re-injected after rollback.)
			crashSpec := fmt.Sprintf("rand:2@%d;crash:worker1@%d", seed, seed)
			cb := buildMapped(t, app.Build, partition.StratFineData)
			ce := cb.engine(t, Options{Faults: mustPlan(t, crashSpec), OnError: mustPolicies(t, "skip")})
			if err := ce.Run(iters); err != nil {
				t.Fatalf("chaos run %s: %v", crashSpec, err)
			}
			if st := ce.Degraded()["worker1"]; st.Crashes != 1 {
				t.Errorf("worker1 stats = %+v, want 1 crash", st)
			}
		})
	}
}
