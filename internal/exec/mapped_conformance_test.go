package exec

import (
	"fmt"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/partition"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// collector replaces a sink filter with a native filter of the same input
// rates that records every popped item, so runs on different engines (and
// differently-rewritten graphs) can be compared by exact output values.
func collector(f *ir.Filter) (*ir.Filter, *[]float64) {
	k := f.Kernel
	peek := k.Peek
	if peek < k.Pop {
		peek = k.Pop
	}
	b := wfunc.NewKernel(k.Name, peek, k.Pop, 0)
	b.Dynamic() // stub body; behaviour is the native closure
	b.WorkBody()
	kc := b.Build()
	kc.Dynamic = false
	kc.Peek, kc.Pop, kc.Push = peek, k.Pop, 0
	got := &[]float64{}
	return &ir.Filter{
		Kernel: kc,
		In:     f.In,
		Out:    ir.TypeVoid,
		WorkFn: func(in, out wfunc.Tape, _ *wfunc.State) {
			for i := 0; i < kc.Pop; i++ {
				*got = append(*got, in.Pop())
			}
		},
	}, got
}

// swapSinks replaces every static sink filter in the tree with a
// collector, returning the collectors' filters and output slices in a
// deterministic walk order.
func swapSinks(s ir.Stream, fs *[]*ir.Filter, outs *[]*[]float64) ir.Stream {
	switch s := s.(type) {
	case *ir.Filter:
		if s.Kernel.Push == 0 && s.Kernel.Pop > 0 && !s.Kernel.Dynamic {
			c, got := collector(s)
			*fs = append(*fs, c)
			*outs = append(*outs, got)
			return c
		}
		return s
	case *ir.Pipeline:
		for i, c := range s.Children {
			s.Children[i] = swapSinks(c, fs, outs)
		}
		return s
	case *ir.SplitJoin:
		for i, c := range s.Children {
			s.Children[i] = swapSinks(c, fs, outs)
		}
		return s
	case *ir.FeedbackLoop:
		s.Body = swapSinks(s.Body, fs, outs)
		if s.Loop != nil {
			s.Loop = swapSinks(s.Loop, fs, outs)
		}
		return s
	}
	return s
}

// sinkItemsPerIter returns how many items each collector receives per
// steady iteration of the graph it is flattened into.
func sinkItemsPerIter(t *testing.T, g *ir.Graph, s *sched.Schedule, fs []*ir.Filter) []int {
	t.Helper()
	out := make([]int, len(fs))
	for i, f := range fs {
		n := g.FilterNode[f]
		if n == nil {
			t.Fatalf("collector %s missing from flat graph", f.Kernel.Name)
		}
		out[i] = s.Reps[n.ID] * f.Kernel.Pop
	}
	return out
}

// TestMappedConformance: the mapped engine — under every host-executable
// strategy, on both work-function backends — produces bit-identical sink
// streams to the sequential engine on the full application suite. The
// rewritten graph's steady iteration covers an integer multiple of the
// original's, so the sequential reference runs scaled-up iterations.
func TestMappedConformance(t *testing.T) {
	strategies := []partition.Strategy{partition.StratTask, partition.StratFineData,
		partition.StratCoarseData, partition.StratSWP, partition.StratCombined}
	backends := []Backend{BackendVM, BackendInterp}
	for _, app := range apps.Suite() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for _, strat := range strategies {
				for _, backend := range backends {
					t.Run(fmt.Sprintf("%s/%v", strat, backend), func(t *testing.T) {
						runMappedConformance(t, app, strat, backend)
					})
				}
			}
		})
	}
}

func runMappedConformance(t *testing.T, app apps.App, strat partition.Strategy, backend Backend) {
	t.Helper()
	// Mapped run on the rewritten program.
	progM := app.Build()
	var mapFs []*ir.Filter
	var mapOuts []*[]float64
	progM.Top = swapSinks(progM.Top, &mapFs, &mapOuts)
	gM, err := ir.Flatten(progM)
	if err != nil {
		t.Fatal(err)
	}
	sM, err := sched.Compute(gM)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildExecPlan(progM, gM, sM, partition.ExecPlanOptions{Strategy: strat, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		t.Fatalf("flattening rewritten program: %v", err)
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		t.Fatalf("scheduling rewritten program: %v", err)
	}
	mopts := Options{Backend: backend}
	if plan.Pipelined {
		st, err := partition.PipelineStages(g2)
		if err != nil {
			t.Fatalf("staging rewritten program: %v", err)
		}
		mopts.Stages = st.Levels
		mopts.StageClusters = st.Clusters
	}
	me, err := NewMappedOpts(g2, s2, plan.Assign(g2, s2), plan.Workers, mopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := me.Run(confIters); err != nil {
		t.Fatalf("mapped run: %v", err)
	}

	// Sequential reference, scaled so both runs see the same item count.
	progR := app.Build()
	var refFs []*ir.Filter
	var refOuts []*[]float64
	progR.Top = swapSinks(progR.Top, &refFs, &refOuts)
	gR, err := ir.Flatten(progR)
	if err != nil {
		t.Fatal(err)
	}
	sR, err := sched.Compute(gR)
	if err != nil {
		t.Fatal(err)
	}
	if len(refFs) != len(mapFs) {
		t.Fatalf("sink walks diverged: %d vs %d collectors", len(refFs), len(mapFs))
	}
	perRef := sinkItemsPerIter(t, gR, sR, refFs)
	perMap := sinkItemsPerIter(t, g2, s2, mapFs)
	scale := 0
	for i := range perRef {
		if perRef[i] == 0 || perMap[i]%perRef[i] != 0 {
			t.Fatalf("sink %d: rewritten per-iteration items %d not a multiple of original %d", i, perMap[i], perRef[i])
		}
		c := perMap[i] / perRef[i]
		if scale == 0 {
			scale = c
		} else if c != scale {
			t.Fatalf("inconsistent steady scaling: sink 0 is %dx, sink %d is %dx", scale, i, c)
		}
	}
	ref, err := NewFromGraphBackend(gR, sR, backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(confIters * scale); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	for i := range refOuts {
		rv, mv := *refOuts[i], *mapOuts[i]
		if len(rv) != len(mv) {
			t.Fatalf("sink %d (%s): %d reference items vs %d mapped", i, refFs[i].Kernel.Name, len(rv), len(mv))
		}
		for j := range rv {
			if rv[j] != mv[j] {
				t.Fatalf("sink %d (%s) item %d: reference %v, mapped %v (strategy %s, fused %d, replicas %d)",
					i, refFs[i].Kernel.Name, j, rv[j], mv[j], strat, plan.Fused, plan.Replicas)
			}
		}
	}

	// Per-node firing counts, per-edge pushed/popped counters, filter
	// states, and channel residue must all match a sequential engine over
	// the same rewritten graph — asserted through the engines' checkpoint
	// images, which serialize exactly that state. (This run appends to the
	// mapped collectors again; outputs were compared above.)
	seq2, err := NewFromGraphBackend(g2, s2, backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq2.Run(confIters); err != nil {
		t.Fatalf("sequential counter reference: %v", err)
	}
	var wantImg, gotImg sliceBuffer
	if err := seq2.WriteCheckpoint(&wantImg, confIters); err != nil {
		t.Fatal(err)
	}
	if err := me.WriteCheckpoint(&gotImg, confIters); err != nil {
		t.Fatal(err)
	}
	if string(wantImg) != string(gotImg) {
		t.Fatalf("mapped engine state diverged from sequential over the rewritten graph (strategy %s): %d- vs %d-byte images differ",
			strat, len(wantImg), len(gotImg))
	}
}
