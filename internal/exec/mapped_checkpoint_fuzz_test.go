package exec

import (
	"bytes"
	"testing"
	"time"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// mappedFuzzTopology builds one fixed rewritten graph the fuzz target's
// engines share (the graph is read-only at run time; all mutable state is
// per-engine). The strategy picks lockstep vs pipelined rewrites.
func mappedFuzzTopology(tb testing.TB, strat partition.Strategy) (*ir.Graph, *sched.Schedule, []int, int, *partition.StagePlan) {
	tb.Helper()
	prog := apps.FMRadio(2, 8)
	g, err := ir.Flatten(prog)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := partition.BuildExecPlan(prog, g, s, partition.ExecPlanOptions{Strategy: strat, Workers: 3})
	if err != nil {
		tb.Fatal(err)
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		tb.Fatal(err)
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		tb.Fatal(err)
	}
	var st *partition.StagePlan
	if plan.Pipelined {
		if st, err = partition.PipelineStages(g2); err != nil {
			tb.Fatal(err)
		}
	}
	return g2, s2, plan.Assign(g2, s2), plan.Workers, st
}

// FuzzMappedCheckpointRestore: the mapped engine's RestoreCheckpoint must
// reject arbitrary, corrupted, or truncated bytes with an error — never
// panic, never deadlock a worker, never install inconsistent queue
// counters. Every input is thrown at both a lockstep and a pipelined
// engine (the latter exercises the SWPS stage-trailer decoder and the
// queue/staging split). Seeds include a valid lockstep image, a valid
// mid-segment stage-skewed image, and targeted corruptions of both —
// including every byte of the skewed image's SWPS trailer and trailer
// truncations — so the fuzzer starts deep in the format.
func FuzzMappedCheckpointRestore(f *testing.F) {
	g2, s2, assign, workers, _ := mappedFuzzTopology(f, partition.StratCoarseData)
	src, err := NewMappedOpts(g2, s2, assign, workers, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := src.Run(2); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.WriteCheckpoint(&buf, 2); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("STRMCKPT"))
	f.Add(valid[:len(valid)/2])
	for _, off := range []int{8, 12, 20, 28, 36, len(valid) - 9} {
		if off >= 0 && off < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}

	// Pipelined topology and a stage-skewed mid-segment image. The SWPS
	// trailer sits at the tail (before the 8-byte footer hash); corrupt and
	// truncate every byte of that stretch to hammer the trailer decoder.
	pg2, ps2, passign, pworkers, pst := mappedFuzzTopology(f, partition.StratSWP)
	pmb := &mappedBuild{g2: pg2, s2: ps2, assign: passign, workers: pworkers, stages: pst}
	skewed, _ := skewedCheckpoint(f, pmb, 8, 11)
	f.Add(skewed)
	trailer := len(skewed) - 60 // generous overshoot of trailer + footer
	if trailer < 0 {
		trailer = 0
	}
	for off := trailer; off < len(skewed); off++ {
		mut := append([]byte(nil), skewed...)
		mut[off] ^= 0xff
		f.Add(mut)
		f.Add(skewed[:off])
	}

	popts := Options{Watchdog: 500 * time.Millisecond, Stages: pst.Levels, StageClusters: pst.Clusters}
	f.Fuzz(func(t *testing.T, data []byte) {
		me, err := NewMappedOpts(g2, s2, assign, workers, Options{Watchdog: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		it, rerr := me.RestoreCheckpoint(data)
		if rerr == nil {
			if it < 0 {
				t.Fatalf("accepted image with negative iteration %d", it)
			}
			if runErr := me.runSteady(1); runErr != nil {
				// A structured error is fine (e.g. a restored state that makes a
				// kernel fault surfaces as an ExecError or DeadlockError); a
				// panic or a hang would have failed already.
				t.Logf("resumed run errored (acceptably): %v", runErr)
			}
		}

		pe, err := NewMappedOpts(pg2, ps2, passign, pworkers, popts)
		if err != nil {
			t.Fatal(err)
		}
		it, rerr = pe.RestoreCheckpoint(data)
		if rerr != nil {
			return
		}
		if it < 0 {
			t.Fatalf("pipelined engine accepted image with negative iteration %d", it)
		}
		if runErr := pe.runSteady(1); runErr != nil {
			t.Logf("pipelined resumed run errored (acceptably): %v", runErr)
		}
	})
}
