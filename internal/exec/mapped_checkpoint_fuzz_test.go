package exec

import (
	"bytes"
	"testing"
	"time"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// mappedFuzzTopology builds one fixed rewritten graph the fuzz target's
// engines share (the graph is read-only at run time; all mutable state is
// per-engine).
func mappedFuzzTopology(tb testing.TB) (*ir.Graph, *sched.Schedule, []int, int) {
	tb.Helper()
	prog := apps.FMRadio(2, 8)
	g, err := ir.Flatten(prog)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := partition.BuildExecPlan(prog, g, s, partition.ExecPlanOptions{Strategy: partition.StratCoarseData, Workers: 3})
	if err != nil {
		tb.Fatal(err)
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		tb.Fatal(err)
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		tb.Fatal(err)
	}
	return g2, s2, plan.Assign(g2, s2), plan.Workers
}

// FuzzMappedCheckpointRestore: the mapped engine's RestoreCheckpoint must
// reject arbitrary, corrupted, or truncated bytes with an error — never
// panic, never deadlock a worker, never install inconsistent queue
// counters. Seeds include a valid mapped image and targeted corruptions of
// it so the fuzzer starts deep in the format.
func FuzzMappedCheckpointRestore(f *testing.F) {
	g2, s2, assign, workers := mappedFuzzTopology(f)
	src, err := NewMappedOpts(g2, s2, assign, workers, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := src.Run(2); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.WriteCheckpoint(&buf, 2); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("STRMCKPT"))
	f.Add(valid[:len(valid)/2])
	for _, off := range []int{8, 12, 20, 28, 36, len(valid) - 9} {
		if off >= 0 && off < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		me, err := NewMappedOpts(g2, s2, assign, workers, Options{Watchdog: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		it, rerr := me.RestoreCheckpoint(data)
		if rerr != nil {
			return // rejected cleanly: the only acceptable failure mode
		}
		if it < 0 {
			t.Fatalf("accepted image with negative iteration %d", it)
		}
		if runErr := me.runSteady(1); runErr != nil {
			// A structured error is fine (e.g. a restored state that makes a
			// kernel fault surfaces as an ExecError or DeadlockError); a
			// panic or a hang would have failed already.
			t.Logf("resumed run errored (acceptably): %v", runErr)
		}
	})
}
