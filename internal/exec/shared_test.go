package exec

import (
	"testing"

	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// sharedTestGraph builds a small source -> gain -> sink graph directly in
// IR, flattened and scheduled.
func sharedTestGraph(t *testing.T) (*ir.Graph, *sched.Schedule) {
	t.Helper()
	src := wfunc.NewKernel("s", 0, 0, 1)
	n := src.Field("n", 0)
	src.WorkBody(wfunc.Push1(n), wfunc.SetF(n, wfunc.AddX(n, wfunc.C(1))))
	g1 := wfunc.NewKernel("g", 1, 1, 1)
	g1.WorkBody(wfunc.Push1(wfunc.MulX(wfunc.PopE(), wfunc.C(3))))
	snk := wfunc.NewKernel("k", 1, 1, 0)
	snk.WorkBody(wfunc.Pop1())
	p := &ir.Program{Name: "T", Top: ir.Pipe("TP",
		&ir.Filter{Kernel: src.Build(), In: ir.TypeVoid, Out: ir.TypeFloat},
		&ir.Filter{Kernel: g1.Build(), In: ir.TypeFloat, Out: ir.TypeFloat},
		&ir.Filter{Kernel: snk.Build(), In: ir.TypeFloat, Out: ir.TypeVoid})}
	g, err := ir.Flatten(p)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return g, s
}

// TestSharedEnginesIndependent stamps several engines from one bundle and
// checks they run independently with identical, correct output.
func TestSharedEnginesIndependent(t *testing.T) {
	g, s := sharedTestGraph(t)
	sh, err := NewShared(g, s, BackendVM)
	if err != nil {
		t.Fatalf("NewShared: %v", err)
	}
	var outs [3][]float64
	engines := make([]*Engine, 3)
	for i := range engines {
		e, err := sh.NewEngine(Options{})
		if err != nil {
			t.Fatalf("NewEngine %d: %v", i, err)
		}
		i := i
		if err := e.TapSink("k#2", func(v float64) { outs[i] = append(outs[i], v) }); err != nil {
			t.Fatalf("TapSink: %v", err)
		}
		engines[i] = e
	}
	// Run them interleaved: per-engine state must not bleed.
	for step := 0; step < 10; step++ {
		for i, e := range engines {
			if step == 0 {
				if err := e.RunInit(); err != nil {
					t.Fatalf("engine %d init: %v", i, err)
				}
			}
			if err := e.RunSteady(1); err != nil {
				t.Fatalf("engine %d steady: %v", i, err)
			}
		}
	}
	for i, out := range outs {
		if len(out) != 10 {
			t.Fatalf("engine %d produced %d items, want 10", i, len(out))
		}
		for j, v := range out {
			if want := float64(j) * 3; v != want {
				t.Fatalf("engine %d item %d: got %v, want %v", i, j, v, want)
			}
		}
	}
}

// TestSharedMatchesDirectConstruction checks a bundle-stamped engine is
// indistinguishable from the classic construction path on both backends.
func TestSharedMatchesDirectConstruction(t *testing.T) {
	for _, backend := range []Backend{BackendVM, BackendInterp} {
		g, s := sharedTestGraph(t)
		sh, err := NewShared(g, s, backend)
		if err != nil {
			t.Fatalf("NewShared: %v", err)
		}
		a, err := sh.NewEngine(Options{})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		b, err := NewFromGraphOpts(g, s, Options{Backend: backend})
		if err != nil {
			t.Fatalf("NewFromGraphOpts: %v", err)
		}
		var av, bv []float64
		if err := a.TapSink("k#2", func(v float64) { av = append(av, v) }); err != nil {
			t.Fatal(err)
		}
		if err := b.TapSink("k#2", func(v float64) { bv = append(bv, v) }); err != nil {
			t.Fatal(err)
		}
		if err := a.Run(25); err != nil {
			t.Fatalf("%v run: %v", backend, err)
		}
		if err := b.Run(25); err != nil {
			t.Fatalf("%v run: %v", backend, err)
		}
		if len(av) != len(bv) {
			t.Fatalf("%v: %d vs %d items", backend, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%v item %d: shared %v, direct %v", backend, i, av[i], bv[i])
			}
		}
	}
}

// TestRingSizedToHighWaterMark pins satellite behavior: tape rings are
// allocated at the schedule's observed high-water mark (rounded to the
// ring's power-of-two granularity), not at a doubled worst case — that is
// what keeps thousands of idle sessions cheap.
func TestRingSizedToHighWaterMark(t *testing.T) {
	g, s := sharedTestGraph(t)
	sh, err := NewShared(g, s, BackendVM)
	if err != nil {
		t.Fatalf("NewShared: %v", err)
	}
	e, err := sh.NewEngine(Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for _, edge := range g.Edges {
		hwm := s.BufCap[edge.ID]
		if n := len(edge.Initial); n > hwm {
			hwm = n
		}
		want := 4
		for want < hwm {
			want *= 2
		}
		if got := len(e.chans[edge.ID].buf); got != want {
			t.Fatalf("edge %d: ring capacity %d, want %d (HWM %d)", edge.ID, got, want, hwm)
		}
	}
}

// TestSharedStampingIsCheap asserts that stamping an engine from an
// existing bundle allocates well under half of what the full build-a-bundle
// path costs — the allocation-light construction the server's session
// fan-out depends on.
func TestSharedStampingIsCheap(t *testing.T) {
	g, s := sharedTestGraph(t)
	sh, err := NewShared(g, s, BackendVM)
	if err != nil {
		t.Fatalf("NewShared: %v", err)
	}
	stamp := testing.AllocsPerRun(50, func() {
		if _, err := sh.NewEngine(Options{}); err != nil {
			t.Fatal(err)
		}
	})
	full := testing.AllocsPerRun(50, func() {
		if _, err := NewFromGraphOpts(g, s, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if stamp*2 >= full {
		t.Fatalf("stamping allocates %.0f objects vs %.0f for a full build; expected < half", stamp, full)
	}
}

// TestOverrideWorkRates checks the override hook and its failure mode: a
// well-behaved override replaces the work function exactly; one that
// violates the kernel's static rates surfaces a structured error instead
// of corrupting the run.
func TestOverrideWorkRates(t *testing.T) {
	g, s := sharedTestGraph(t)
	sh, err := NewShared(g, s, BackendVM)
	if err != nil {
		t.Fatalf("NewShared: %v", err)
	}
	e, err := sh.NewEngine(Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.OverrideWork("nope", func(in, out wfunc.Tape) {}); err == nil {
		t.Fatal("OverrideWork accepted an unknown filter")
	}
	var got []float64
	if err := e.OverrideWork("s#0", func(_, out wfunc.Tape) { out.Push(7) }); err != nil {
		t.Fatalf("OverrideWork: %v", err)
	}
	if err := e.TapSink("k#2", func(v float64) { got = append(got, v) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != 21 {
			t.Fatalf("item %d: got %v, want 21 (override 7 x gain 3)", i, v)
		}
	}
	// A popping override on a filter with no input tape must fault
	// structurally, not crash the process.
	e2, err := sh.NewEngine(Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e2.OverrideWork("g#1", func(in, out wfunc.Tape) {
		in.Pop()
		in.Pop() // second pop exceeds the single buffered item
		out.Push(0)
	}); err != nil {
		t.Fatalf("OverrideWork: %v", err)
	}
	err = e2.Run(1)
	if err == nil {
		t.Fatal("rate-violating override ran without error")
	}
	if _, ok := err.(*ExecError); !ok {
		t.Fatalf("rate violation produced %T (%v), want *ExecError", err, err)
	}
}
