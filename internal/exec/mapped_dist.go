package exec

import (
	"errors"
	"fmt"

	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// This file is the mapped engine's shard face: the pieces internal/dist
// composes into a distributed run. A shard is a full MappedEngine over the
// whole rewritten graph whose Options.LocalWorkers mask names the workers
// this process executes; initialization replays locally (it is
// deterministic and cheap), steady state fires only the local partitions,
// and edges crossing the shard boundary move their per-iteration batches
// through RemoteHooks instead of in-memory channels. At every epoch
// barrier each shard exports the state it owns (ExportShard) and the
// coordinator reassembles the canonical engine-neutral checkpoint image
// (AssembleShardImage) — byte-identical to what a single-process run
// would have written, which is what makes cross-process rollback,
// migration, and sequential-engine interchange work.

// ErrRemoteStopped is the sentinel a RemoteHooks implementation returns
// when the epoch's stop channel fired while it was blocked; the worker
// unwinds quietly instead of reporting a transport error.
var ErrRemoteStopped = errors.New("exec: remote transfer stopped")

// RemoteHooks carries the cross-shard edge transport of a sharded mapped
// engine. Send ships one iteration's batch of a local producer's edge;
// Recv delivers one batch of a remote producer's edge. Both may block
// (that is the backpressure) but must unwind with ErrRemoteStopped when
// stop closes. Batches may be empty but are never nil on Send.
type RemoteHooks struct {
	Send func(edge int, batch []float64, stop <-chan struct{}) error
	Recv func(edge int, stop <-chan struct{}) ([]float64, error)
}

// localWorker reports whether worker w runs in this process.
func (me *MappedEngine) localWorker(w int) bool {
	return me.local == nil || me.local[w]
}

// Sharded reports whether this engine is one shard of a distributed run.
func (me *MappedEngine) Sharded() bool { return me.local != nil }

// Prepare replays initialization and (re)builds the steady-state topology
// without running any steady iterations — the distributed shard's setup
// step, after which RestoreCheckpoint or StepEpoch may be called. It is
// Run's setup phase exposed on its own.
func (me *MappedEngine) Prepare() error { return me.setup() }

// Iteration returns the number of completed steady iterations.
func (me *MappedEngine) Iteration() int64 { return me.iter }

// StepEpoch runs iters steady iterations across the local workers and
// waits for the barrier — one distributed epoch. Unlike Run it takes no
// checkpoints and performs no crash recovery (the distributed coordinator
// owns both); on error the engine's state is unspecified and the shard
// must discard it. The engine must be Prepared or restored first.
func (me *MappedEngine) StepEpoch(iters int) error {
	if !me.ready {
		return fmt.Errorf("exec: engine not prepared; call Prepare or RestoreCheckpoint first")
	}
	if iters <= 0 {
		return fmt.Errorf("exec: epoch of %d iterations", iters)
	}
	if err := me.runEpoch(iters); err != nil {
		return err
	}
	me.iter += int64(iters)
	return nil
}

// ShardNodeState is one locally-owned node's share of a barrier image:
// its firing count and (for stateful filters) its kernel state. The state
// is referenced, not copied — serialize it before resuming the engine.
type ShardNodeState struct {
	ID    int
	Fired int64
	State *wfunc.State
}

// ShardEdgeState is one locally-owned edge's share of a barrier image:
// the buffered residue sitting in its consumer queue (ownership follows
// the consumer, which is where a quiesced edge's items live).
type ShardEdgeState struct {
	ID    int
	Items []float64
}

// ShardState is the slice of a coordinated barrier image owned by one
// shard: its nodes' firing counts and states, and the residue of every
// edge whose consumer it runs. The coordinator merges the shards'
// ShardStates into a canonical checkpoint with AssembleShardImage.
type ShardState struct {
	Iteration int64
	Nodes     []ShardNodeState
	Edges     []ShardEdgeState
}

// ExportShard captures this shard's share of the current barrier: every
// node on a local worker, and every edge consumed by a local worker. Must
// be called at an epoch barrier (after Prepare/StepEpoch returned). The
// node states are referenced, not cloned.
func (me *MappedEngine) ExportShard() (*ShardState, error) {
	if !me.ready {
		return nil, fmt.Errorf("exec: engine not prepared; nothing to export")
	}
	st := &ShardState{Iteration: me.iter}
	for _, n := range me.G.Nodes {
		if !me.localWorker(me.Assign[n.ID]) {
			continue
		}
		rt := me.nodes[n.ID]
		st.Nodes = append(st.Nodes, ShardNodeState{ID: n.ID, Fired: rt.fired, State: rt.state})
	}
	for _, e := range me.G.Edges {
		if !me.localWorker(me.Assign[e.Dst.ID]) {
			continue
		}
		q := me.queues[e.ID]
		items := make([]float64, 0, q.Len())
		for i := 0; i < q.Len(); i++ {
			items = append(items, q.Peek(i))
		}
		if sq := me.stage[e.ID]; sq != nil {
			// Quiesced lockstep barriers leave staging empty; keep the
			// image()-identical concatenation anyway for safety.
			for i := 0; i < sq.Len(); i++ {
				items = append(items, sq.Peek(i))
			}
		}
		st.Edges = append(st.Edges, ShardEdgeState{ID: e.ID, Items: items})
	}
	return st, nil
}

// AssembleShardImage merges per-shard barrier states into the canonical
// engine-neutral checkpoint image over (g, s) — byte-identical to the
// image a single-process mapped or sequential engine would write at the
// same iteration. Every node and every edge must be owned by exactly one
// part; firing counts are validated against the schedule's initialization
// totals, and per-edge pushed/popped counters are reconstructed from the
// firing counts exactly as the mapped engine does.
func AssembleShardImage(g *ir.Graph, s *sched.Schedule, iteration int64, parts []*ShardState) ([]byte, error) {
	initFired := make([]int64, len(g.Nodes))
	for _, n := range g.Nodes {
		initFired[n.ID] = int64(s.InitReps[n.ID])
	}
	img := &ckptImage{
		iteration: iteration,
		nodes:     make([]ckptNode, len(g.Nodes)),
		edges:     make([]ckptEdge, len(g.Edges)),
		pending:   make([][]*message, len(g.Nodes)),
	}
	haveNode := make([]bool, len(g.Nodes))
	haveEdge := make([]bool, len(g.Edges))
	for pi, part := range parts {
		if part == nil {
			return nil, fmt.Errorf("exec: assemble: part %d is nil", pi)
		}
		for _, ns := range part.Nodes {
			if ns.ID < 0 || ns.ID >= len(g.Nodes) {
				return nil, fmt.Errorf("exec: assemble: part %d names node %d of %d", pi, ns.ID, len(g.Nodes))
			}
			if haveNode[ns.ID] {
				return nil, fmt.Errorf("exec: assemble: node %d owned by two shards", ns.ID)
			}
			haveNode[ns.ID] = true
			if ns.Fired < initFired[ns.ID] {
				return nil, fmt.Errorf("exec: assemble: node %s fired %d times, below its initialization count %d",
					g.Nodes[ns.ID].Name, ns.Fired, initFired[ns.ID])
			}
			img.nodes[ns.ID] = ckptNode{fired: ns.Fired, state: ns.State}
			img.firings += ns.Fired
		}
		for _, es := range part.Edges {
			if es.ID < 0 || es.ID >= len(g.Edges) {
				return nil, fmt.Errorf("exec: assemble: part %d names edge %d of %d", pi, es.ID, len(g.Edges))
			}
			if haveEdge[es.ID] {
				return nil, fmt.Errorf("exec: assemble: edge %d owned by two shards", es.ID)
			}
			haveEdge[es.ID] = true
			img.edges[es.ID] = ckptEdge{items: es.Items}
		}
	}
	for id, ok := range haveNode {
		if !ok {
			return nil, fmt.Errorf("exec: assemble: node %s owned by no shard", g.Nodes[id].Name)
		}
	}
	for id, ok := range haveEdge {
		if !ok {
			return nil, fmt.Errorf("exec: assemble: edge %s owned by no shard", g.Edges[id])
		}
	}
	for _, e := range g.Edges {
		pushed := initFired[e.Src.ID]*int64(e.Src.PushPort(e.SrcPort)) + int64(len(e.Initial)) +
			(img.nodes[e.Src.ID].fired-initFired[e.Src.ID])*int64(e.Src.PushPort(e.SrcPort))
		ie := &img.edges[e.ID]
		ie.pushed = pushed
		ie.popped = pushed - int64(len(ie.items))
		if ie.popped < 0 {
			return nil, fmt.Errorf("exec: assemble: edge %s buffers %d items but only %d were ever pushed", e, len(ie.items), pushed)
		}
	}
	var buf sliceBuffer
	if err := writeImage(&buf, graphFingerprint(g, s), img); err != nil {
		return nil, err
	}
	return buf, nil
}
