package exec

import (
	"bytes"
	"testing"
	"time"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/partition"
)

// threeLevelProg is the minimal pipelined shape: one node per stage level,
// so a pipelined run at goal=1 is all prologue and epilogue — the segment
// never reaches a steady middle and every firing happens during skew
// build-up or drain.
func threeLevelProg() *ir.Program {
	return &ir.Program{Name: "three", Top: ir.Pipe("main",
		RampSource("src"),
		gainFilter("g", 10),
		NullSink("snk", 1))}
}

// TestSWPShortGoal: pipelined runs whose goal is smaller than the pipeline
// depth (goal < levels, so the segment is pure prologue+drain) complete
// cleanly, drain every in-flight item, and match the sequential engine's
// output and final state byte-for-byte. Covers a plain 3-level pipeline and
// the three pipelined app families (deep chain, feedback cluster, teleport
// messaging), with and without coordinated checkpoints.
func TestSWPShortGoal(t *testing.T) {
	cases := []struct {
		name  string
		build func() *ir.Program
	}{
		{"ThreeLevel", threeLevelProg},
		{"FMRadio", func() *ir.Program { return apps.FMRadio(2, 8) }},
		{"Reverb", func() *ir.Program { return apps.Reverb(8, 0.6) }},
		{"FreqHop", func() *ir.Program { return apps.FreqHoppingRadio(true) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, goal := range []int{1, 2, 3} {
				for _, ckpt := range []int{0, 1} {
					mb := buildMapped(t, tc.build, partition.StratSWP)
					refB := buildMapped(t, tc.build, partition.StratSWP)
					ref, err := NewFromGraphBackend(refB.g2, refB.s2, BackendVM)
					if err != nil {
						t.Fatal(err)
					}
					if err := ref.Run(goal); err != nil {
						t.Fatal(err)
					}

					me := mb.engine(t, Options{CheckpointEvery: ckpt})
					done := make(chan error, 1)
					go func() { done <- me.Run(goal) }()
					select {
					case err := <-done:
						if err != nil {
							t.Fatalf("goal=%d ckpt=%d: %v", goal, ckpt, err)
						}
					case <-time.After(10 * time.Second):
						t.Fatalf("goal=%d ckpt=%d: pipelined run hung", goal, ckpt)
					}
					compareOuts(t, refB.outs, mb.outs, "short goal")
					img := mappedCkptBytes(t, me, int64(goal))
					var rbuf bytes.Buffer
					if err := ref.WriteCheckpoint(&rbuf, int64(goal)); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(img, rbuf.Bytes()) {
						t.Fatalf("goal=%d ckpt=%d: final images differ from sequential", goal, ckpt)
					}
				}
			}
		})
	}
}

// TestSWPGoalOneCrash: a worker crash during the prologue of a goal=1
// pipelined run (nothing but skew build-up in flight) recovers onto the
// survivors and still produces the sequential output.
func TestSWPGoalOneCrash(t *testing.T) {
	mb := buildMapped(t, func() *ir.Program { return apps.FMRadio(2, 8) }, partition.StratSWP)
	refB := buildMapped(t, func() *ir.Program { return apps.FMRadio(2, 8) }, partition.StratSWP)
	ref, err := NewFromGraphBackend(refB.g2, refB.s2, BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(1); err != nil {
		t.Fatal(err)
	}
	me := mb.engine(t, Options{CheckpointEvery: 1, Faults: mustPlan(t, "crash:worker1@2")})
	done := make(chan error, 1)
	go func() { done <- me.Run(1) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("goal=1 crash run hung")
	}
	if me.Workers != 3 {
		t.Fatalf("engine degraded to %d workers, want 3", me.Workers)
	}
	compareOuts(t, refB.outs, mb.outs, "goal=1 crash")
}

// TestSWPShortSegmentRestore: a skewed checkpoint cut at EVERY cycle of a
// short segment (segIters smaller than the stage batch, so the flush
// schedule never reaches a batch boundary) restores into a fresh engine
// whose continuation completes the run exactly. Sweeps the 3-level
// pipeline exhaustively and spot-checks the 10-level FMRadio at goal=1.
func TestSWPShortSegmentRestore(t *testing.T) {
	cases := []struct {
		name  string
		build func() *ir.Program
		goals []int
	}{
		{"ThreeLevel", threeLevelProg, []int{1, 2, 3, 9}},
		{"FMRadio", func() *ir.Program { return apps.FMRadio(2, 8) }, []int{1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, goal := range tc.goals {
				// Probe the segment geometry once.
				mb := buildMapped(t, tc.build, partition.StratSWP)
				me := mb.engine(t, Options{})
				if err := me.setup(); err != nil {
					t.Fatal(err)
				}
				me.swp.base, me.swp.segIters = 0, int64(goal)
				total := me.swp.segIters + me.swp.maxStage()

				for cut := int64(1); cut < total; cut++ {
					mb2 := buildMapped(t, tc.build, partition.StratSWP)
					m1 := mb2.engine(t, Options{})
					if err := m1.setup(); err != nil {
						t.Fatal(err)
					}
					m1.swp.base, m1.swp.segIters = 0, int64(goal)
					if err := m1.driveTo(cut); err != nil {
						t.Fatalf("goal=%d cut=%d: %v", goal, cut, err)
					}
					img := mappedCkptBytes(t, m1, 0)

					mb3 := buildMapped(t, tc.build, partition.StratSWP)
					m2 := mb3.engine(t, Options{})
					done := make(chan error, 1)
					go func() { done <- m2.RunFromCheckpoint(img, goal) }()
					select {
					case err := <-done:
						if err != nil {
							t.Fatalf("goal=%d cut=%d resume: %v", goal, cut, err)
						}
					case <-time.After(10 * time.Second):
						t.Fatalf("goal=%d cut=%d: resume hung", goal, cut)
					}
					// Continuation output = full output minus the pre-cut drain.
					full := buildMapped(t, tc.build, partition.StratSWP)
					fe := full.engine(t, Options{})
					if err := fe.Run(goal); err != nil {
						t.Fatal(err)
					}
					for i := range full.outs {
						want := (*full.outs[i])[len(*mb2.outs[i]):]
						got := *mb3.outs[i]
						if len(want) != len(got) {
							t.Fatalf("goal=%d cut=%d sink %d: %d items vs %d", goal, cut, i, len(want), len(got))
						}
						for j := range want {
							if want[j] != got[j] {
								t.Fatalf("goal=%d cut=%d sink %d item %d: %v vs %v", goal, cut, i, j, want[j], got[j])
							}
						}
					}
				}
			}
		})
	}
}
