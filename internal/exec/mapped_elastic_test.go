package exec

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"streamit/internal/apps"
	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/partition"
	"streamit/internal/wfunc"
)

// skewProg is a plain pipeline of cheap gain filters — under StratTask the
// static estimator sees five near-equal filters, so the packer has no reason
// to isolate any of them. Tests then inflate one filter's runtime cost with
// OverrideWork to open a gap between the static plan and reality.
func skewProg() *ir.Program {
	return &ir.Program{Name: "skew", Top: ir.Pipe("main",
		RampSource("src"),
		gainFilter("a", 2),
		gainFilter("b", 3),
		gainFilter("hot", 5),
		gainFilter("d", 7),
		NullSink("snk", 1))}
}

// spinGain burns CPU and then computes exactly what gainFilter(g) computes,
// so overriding with it changes a filter's cost without changing its output.
func spinGain(g float64, spins int) func(in, out wfunc.Tape) {
	return func(in, out wfunc.Tape) {
		v := in.Pop()
		x := 0.0
		for i := 0; i < spins; i++ {
			x += float64(i % 7)
		}
		if x < 0 { // never true; keeps the loop observable
			v += x
		}
		out.Push(v * g)
	}
}

// runMappedTimed runs the engine with a hang watchdog.
func runMappedTimed(t *testing.T, me *MappedEngine, goal int, label string) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- me.Run(goal) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s: run hung", label)
	}
}

// hotDWorkers locates the "hot" and "d" filters and returns their workers
// under the given assignment.
func hotDWorkers(t *testing.T, g *ir.Graph, assign []int) (hotW, dW int) {
	t.Helper()
	hotW, dW = -1, -1
	for _, n := range g.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		switch faults.BaseName(n.Name) {
		case "hot":
			hotW = assign[n.ID]
		case "d":
			dW = assign[n.ID]
		}
	}
	if hotW < 0 || dW < 0 {
		t.Fatal("hot or d filter missing from rewritten graph")
	}
	return hotW, dW
}

// TestMappedElasticImbalanceReplan: two filters whose measured cost dwarfs
// their static estimates start on the same worker; the imbalance detector
// trips, the candidate packing halves the predicted bottleneck (clearing
// the improvement gate), and the controller separates them — mid-run, with
// bit-identical output and a final state byte-equal to a run that was
// never re-planned.
func TestMappedElasticImbalanceReplan(t *testing.T) {
	mb := buildMapped(t, skewProg, partition.StratTask)
	ref := buildMapped(t, skewProg, partition.StratTask)

	// Force the stale plan's mistake: both soon-to-be-hot filters on
	// worker 0, everything else spread over the rest.
	w := 1
	for _, n := range mb.g2.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		switch faults.BaseName(n.Name) {
		case "hot", "d":
			mb.assign[n.ID] = 0
		default:
			mb.assign[n.ID] = w
			w = w%3 + 1
		}
	}

	re := ref.engine(t, Options{})
	me := mb.engine(t, Options{Elastic: true, ElasticWindow: 4, CheckpointEvery: 2})
	for _, e := range []*MappedEngine{re, me} {
		if err := e.OverrideWork("hot", spinGain(5, 50000)); err != nil {
			t.Fatal(err)
		}
		if err := e.OverrideWork("d", spinGain(7, 50000)); err != nil {
			t.Fatal(err)
		}
	}
	const goal = 64
	runMappedTimed(t, re, goal, "reference")
	runMappedTimed(t, me, goal, "elastic")

	if me.Replans() < 1 {
		t.Fatalf("imbalance never tripped a re-plan (replans=%d)", me.Replans())
	}
	// After the re-plan the two hot filters no longer share a worker: their
	// measured work dominates every other node's, so any measured LPT
	// packing splits them apart.
	hotW, dW := hotDWorkers(t, mb.g2, me.Assign)
	if hotW == dW {
		t.Errorf("after re-plan, hot and d still share worker %d", hotW)
	}
	compareOuts(t, ref.outs, mb.outs, "elastic imbalance")
	if !bytes.Equal(mappedCkptBytes(t, me, goal), mappedCkptBytes(t, re, goal)) {
		t.Fatal("final images diverged after elastic re-plan")
	}
}

// TestMappedElasticReplanHysteresis: the improvement gate. When one
// dominant filter already owns its worker, the detector's max/mean ratio
// stays tripped forever, but no packing can lift the bottleneck — the
// controller must hold still instead of churning through equivalent
// re-plans at every barrier.
func TestMappedElasticReplanHysteresis(t *testing.T) {
	mb := buildMapped(t, skewProg, partition.StratTask)
	// Start from an already-converged shape: hot alone on worker 0.
	w := 1
	for _, n := range mb.g2.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		if faults.BaseName(n.Name) == "hot" {
			mb.assign[n.ID] = 0
		} else {
			mb.assign[n.ID] = w
			w = w%3 + 1
		}
	}
	me := mb.engine(t, Options{Elastic: true, ElasticWindow: 2, CheckpointEvery: 2})
	if err := me.OverrideWork("hot", spinGain(5, 50000)); err != nil {
		t.Fatal(err)
	}
	runMappedTimed(t, me, 64, "hysteresis")
	if me.Replans() != 0 {
		t.Fatalf("controller re-planned %d times with nothing to gain", me.Replans())
	}
}

// TestMappedElasticScheduledResize: a mid-run worker-count change via
// ResizeAt/ResizeTo completes with bit-identical output on both the
// lockstep and the pipelined engine.
func TestMappedElasticScheduledResize(t *testing.T) {
	for _, strat := range []partition.Strategy{partition.StratTask, partition.StratSWP} {
		for _, target := range []int{2, 1, 3} {
			t.Run(fmt.Sprintf("%s/to%d", strat, target), func(t *testing.T) {
				build := func() *ir.Program { return apps.FMRadio(2, 8) }
				mb := buildMapped(t, build, strat)
				ref := buildMapped(t, build, strat)

				re := ref.engine(t, Options{})
				me := mb.engine(t, Options{Elastic: true, CheckpointEvery: 5,
					ResizeAt: 10, ResizeTo: target})
				const goal = 40
				runMappedTimed(t, re, goal, "reference")
				runMappedTimed(t, me, goal, "resized")

				if me.Workers != target {
					t.Fatalf("Workers = %d after resize, want %d", me.Workers, target)
				}
				if me.Replans() < 1 {
					t.Fatal("scheduled resize never re-planned")
				}
				compareOuts(t, ref.outs, mb.outs, "scheduled resize")
				if !bytes.Equal(mappedCkptBytes(t, me, goal), mappedCkptBytes(t, re, goal)) {
					t.Fatal("final images diverged after resize")
				}
			})
		}
	}
}

// TestMappedElasticResizeAPI: the Resize entry point — pre-run requests are
// consumed at the first barrier; requests are rejected without Elastic and
// for impossible worker counts.
func TestMappedElasticResizeAPI(t *testing.T) {
	mb := buildMapped(t, func() *ir.Program { return apps.FMRadio(2, 8) }, partition.StratCoarseData)
	me := mb.engine(t, Options{Elastic: true, CheckpointEvery: 2})
	if err := me.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
	if err := me.Resize(2); err != nil {
		t.Fatal(err)
	}
	runMappedTimed(t, me, 20, "resize API")
	if me.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", me.Workers)
	}

	ref := buildMapped(t, func() *ir.Program { return apps.FMRadio(2, 8) }, partition.StratCoarseData)
	re := ref.engine(t, Options{})
	runMappedTimed(t, re, 20, "reference")
	compareOuts(t, ref.outs, mb.outs, "resize API")

	plain := buildMapped(t, func() *ir.Program { return apps.FMRadio(2, 8) }, partition.StratCoarseData)
	pe := plain.engine(t, Options{})
	if err := pe.Resize(2); err == nil {
		t.Fatal("Resize accepted without Options.Elastic")
	}
	if pe.Replans() != 0 {
		t.Fatal("non-elastic engine reports replans")
	}
}

// TestMappedElasticCrashDuringReplan: a worker crash in the epoch right
// after an elastic re-plan rolls back to the re-plan's own barrier image
// (the controller restores from the just-taken coordinated checkpoint, so
// that image is the rollback target) and the run still completes with
// bit-identical output on the reduced worker set.
func TestMappedElasticCrashDuringReplan(t *testing.T) {
	build := func() *ir.Program { return apps.FMRadio(2, 8) }
	mb := buildMapped(t, build, partition.StratTask)
	ref := buildMapped(t, build, partition.StratTask)

	re := ref.engine(t, Options{})
	// Checkpoint every iteration, like the crash-recovery machinery itself
	// does when worker faults are scheduled: the rollback target is then
	// the crash iteration's own barrier, so no sink output replays.
	me := mb.engine(t, Options{Elastic: true, CheckpointEvery: 1,
		ResizeAt: 6, ResizeTo: 3,
		Faults: mustPlan(t, "crash:worker1@7")})
	const goal = 30
	runMappedTimed(t, re, goal, "reference")
	runMappedTimed(t, me, goal, "crash during replan")

	if me.Replans() < 1 {
		t.Fatal("resize never re-planned")
	}
	if me.Workers != 2 {
		t.Fatalf("Workers = %d, want 2 (resized to 3, then one crashed)", me.Workers)
	}
	st := me.Degraded()["worker1"]
	if st.Crashes != 1 {
		t.Fatalf("worker1 crashes = %d, want 1", st.Crashes)
	}
	compareOuts(t, ref.outs, mb.outs, "crash during replan")
	if !bytes.Equal(mappedCkptBytes(t, me, goal), mappedCkptBytes(t, re, goal)) {
		t.Fatal("final images diverged after crash-during-replan")
	}
}

// TestMappedElasticOptionValidation: malformed elastic options fail engine
// construction instead of misbehaving at the first barrier.
func TestMappedElasticOptionValidation(t *testing.T) {
	mb := buildMapped(t, func() *ir.Program { return apps.FMRadio(2, 8) }, partition.StratTask)
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"negative window", Options{Elastic: true, ElasticWindow: -3}, "window"},
		{"threshold below 1", Options{Elastic: true, ElasticThreshold: 0.5}, "threshold"},
		{"resize-at without resize-to", Options{Elastic: true, ResizeAt: 5}, "together"},
		{"resize-to without resize-at", Options{Elastic: true, ResizeTo: 2}, "together"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if mb.stages != nil {
				tc.opts.Stages = mb.stages.Levels
				tc.opts.StageClusters = mb.stages.Clusters
			}
			_, err := NewMappedOpts(mb.g2, mb.s2, mb.assign, mb.workers, tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

// TestMappedOverrideWorkErrors: overriding a filter that fusion folded into
// a segment is rejected with an error naming the segment to target instead;
// unknown names are rejected outright.
func TestMappedOverrideWorkErrors(t *testing.T) {
	mb := buildMapped(t, func() *ir.Program { return apps.FMRadio(2, 8) }, partition.StratCoarseData)
	me := mb.engine(t, Options{})
	noop := func(in, out wfunc.Tape) {}
	if err := me.OverrideWork("NoSuchFilter", noop); err == nil {
		t.Fatal("unknown filter accepted")
	}
	// Find a fused segment and one of its constituents.
	var segment, constituent string
	for _, n := range mb.g2.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		base := faults.BaseName(n.Name)
		if parts := faults.SplitConstituents(base); len(parts) > 1 {
			segment, constituent = base, parts[0]
			break
		}
	}
	if segment == "" {
		t.Skip("strategy produced no fused segments")
	}
	err := me.OverrideWork(constituent, noop)
	if err == nil || !strings.Contains(err.Error(), segment) {
		t.Fatalf("overriding fused constituent %q: got %v, want error naming segment %q", constituent, err, segment)
	}
	if err := me.OverrideWork(segment, noop); err != nil {
		t.Fatalf("overriding the segment itself: %v", err)
	}
}

// FuzzElasticReplan: for arbitrary resize barriers, worker-count targets,
// and strategies (lockstep and pipelined), an elastic re-plan mid-run keeps
// the output bit-identical and the final engine image byte-equal to an
// uninterrupted run.
func FuzzElasticReplan(f *testing.F) {
	f.Add(int64(5), 2, false)
	f.Add(int64(1), 1, false)
	f.Add(int64(12), 3, true)
	f.Add(int64(3), 1, true)
	f.Add(int64(17), 4, false)
	f.Fuzz(func(t *testing.T, resizeAt int64, target int, pipelined bool) {
		if resizeAt < 1 || resizeAt > 20 || target < 1 || target > 4 {
			t.Skip()
		}
		strat := partition.StratTask
		if pipelined {
			strat = partition.StratSWP
		}
		build := func() *ir.Program { return apps.FMRadio(2, 8) }
		mb := buildMapped(t, build, strat)
		ref := buildMapped(t, build, strat)

		re := ref.engine(t, Options{})
		me := mb.engine(t, Options{Elastic: true, CheckpointEvery: 2,
			ResizeAt: resizeAt, ResizeTo: target})
		const goal = 24
		runMappedTimed(t, re, goal, "reference")
		runMappedTimed(t, me, goal, "resized")

		if me.Workers != target {
			t.Fatalf("Workers = %d, want %d", me.Workers, target)
		}
		compareOuts(t, ref.outs, mb.outs, "fuzz resize")
		if !bytes.Equal(mappedCkptBytes(t, me, goal), mappedCkptBytes(t, re, goal)) {
			t.Fatal("final images diverged")
		}
	})
}
