package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// MappedEngine executes a flattened stream graph on a fixed set of worker
// goroutines — one per fused partition, default GOMAXPROCS — instead of
// one per filter. Each worker fires its assigned nodes in global
// topological order once per steady iteration; edges between nodes on the
// same worker are plain in-memory queues, edges crossing workers are
// batched SPSC channels carrying one steady iteration's items per batch.
//
// This is the host-execution form of the partitioner's coarse-grained
// plans: the ExecPlan rewrite (fusion + executable fission) shrinks the
// graph, and the worker assignment packs it onto cores, so synchronization
// cost scales with the partition count, not the filter count. Results are
// bit-identical to the sequential Engine.
//
// Fault tolerance: steady state runs in epochs. At every epoch boundary
// all workers have completed the same iteration count, every cross-worker
// channel has been drained (each edge carries exactly one batch per
// iteration), and the engine state — filter states, firing counts, and
// consumer-queue residue — is bit-identical to a sequential engine's at
// the same iteration. That barrier is where coordinated checkpoints are
// taken (WriteCheckpoint, sharing the sequential engine's image format)
// and where worker-crash recovery rolls back to: an injected crash
// (faults "crash:workerN@iter") unwinds the epoch, the supervisor
// re-plans the assignment onto the surviving workers, restores the last
// checkpoint, and resumes.
//
// Deadlock-freedom: every worker visits its nodes in a common linear
// extension of the dataflow order and every edge carries exactly one batch
// per iteration, so the worker holding the globally earliest incomplete
// firing always has its inputs available and its output channel short of
// capacity — it can always progress. A watchdog still supervises the run
// (fault injection can wedge it deliberately) and attributes blocked
// edges to workers in its DeadlockError.
//
// Software pipelining (Options.Stages): instead of the lockstep iteration
// schedule, workers run stage-skewed macro-cycles — a node at stage level
// l fires logical iteration t-l*StageBatch at cycle t, so producers work
// on later iterations while consumers still drain earlier ones, and
// cross-worker transfers flush once per StageBatch cycles instead of once
// per iteration. Feedback loops and teleport messaging, which the
// lockstep schedule cannot host, run inside single-worker stage clusters
// at firing granularity (mapped_swp.go), so the pipelined engine lifts
// both restrictions. Epoch barriers fall on cycle boundaries; the
// checkpoint image then carries an SWPS trailer recording the skew plus
// any unflushed staging residue, and rolls back/resumes exactly.
type MappedEngine struct {
	G   *ir.Graph
	Sch *sched.Schedule
	// Backend is the work-function execution substrate.
	Backend Backend
	// Workers is the worker-goroutine count; Assign[n.ID] names each
	// node's worker. Both shrink when crash recovery degrades the engine
	// onto the surviving workers.
	Workers int
	Assign  []int

	// Depth is the cross-worker channel capacity in batches (the
	// backpressure bound; default DefaultQueueDepth).
	Depth int

	// Watchdog is the stall-detection interval: 0 selects
	// DefaultWatchdogInterval, negative disables detection.
	Watchdog time.Duration

	// CheckpointEvery snapshots a coordinated checkpoint every N steady
	// iterations. 0 checkpoints only when worker faults are scheduled
	// (then every iteration, the rollback target for crash recovery).
	CheckpointEvery int

	// Replan recomputes a node→worker assignment for a reduced worker
	// count during crash recovery (typically partition.ExecPlan.AssignN).
	// nil, or an invalid result, falls back to redistributing the dead
	// worker's nodes onto the least-loaded survivors.
	Replan func(workers int) []int

	// ReplanMeasured recomputes an assignment from live measured work per
	// firing (typically partition.ExecPlan.AssignMeasured) — the elastic
	// controller's preferred packer. nil, or an invalid result, falls back
	// to Replan and then to the engine's own measured packing.
	ReplanMeasured func(workers int, perFiringNS map[string]int64) []int

	// elastic is the runtime replan controller (nil unless Options.Elastic).
	elastic *elasticState

	sup *supervisor

	// swp holds the software-pipelining runtime (stage levels, clusters,
	// messaging state, segment position); nil for lockstep plans.
	swp *swpState

	// local masks the workers this engine instance actually runs when it
	// is one shard of a distributed run (Options.LocalWorkers); nil means
	// all workers are local. remote carries the cross-shard transports;
	// remoteIn/remoteOut mark edges whose producer or consumer lives on a
	// peer shard.
	local     []bool
	remote    *RemoteHooks
	remoteIn  []bool
	remoteOut []bool

	nodes []*pnodeRT
	order [][]*ir.Node // per-worker node lists in topological order

	// Steady-state topology, rebuilt by setup and by crash recovery:
	// per-edge consumer queues, and for cross-worker edges a producer
	// staging queue plus the batch channel.
	queues []*SliceQueue
	stage  []*SliceQueue
	chans  []chan []float64

	// Checkpoint bookkeeping: ready marks a completed setup or restore,
	// iter counts completed steady iterations, initFired/initPushed are
	// the schedule-derived post-initialization counters the image's edge
	// counters are reconstructed from, lastImg is the rollback target.
	ready      bool
	iter       int64
	initFired  []int64
	initPushed []int64
	lastImg    []byte

	// prof and rec are the observability hooks; nil when disabled.
	prof *obs.Profiler
	rec  *obs.Recorder

	// Per-epoch supervision state.
	stopCh   chan struct{}
	progress int64
	statuses []*nodeStatus
}

// DefaultQueueDepth is the cross-worker channel capacity in batches.
const DefaultQueueDepth = 2

// NewMapped prepares a mapped engine on the default backend with every
// node assigned by the caller; workers <= 0 selects GOMAXPROCS.
func NewMapped(g *ir.Graph, s *sched.Schedule, assign []int, workers int) (*MappedEngine, error) {
	return NewMappedOpts(g, s, assign, workers, Options{Backend: BackendVM})
}

// NewMappedOpts is the full-option constructor. Without Options.Stages the
// graph restrictions match the parallel engine's — no teleport messaging,
// no feedback loops; a pipelined plan (Options.Stages set) lifts both,
// hosting them inside single-worker stage clusters.
func NewMappedOpts(g *ir.Graph, s *sched.Schedule, assign []int, workers int, opts Options) (*MappedEngine, error) {
	if opts.Stages == nil {
		if len(g.Portals) > 0 || len(g.Constraints) > 0 {
			return nil, fmt.Errorf("exec: the mapped backend does not support teleport messaging; use a pipelined plan or the sequential Engine")
		}
		for _, e := range g.Edges {
			if e.Back {
				return nil, fmt.Errorf("exec: feedback loops need finer-than-batch interleaving; use a pipelined plan or the sequential Engine")
			}
		}
		for _, n := range g.Nodes {
			if n.Kind == ir.NodeFilter && wfunc.SendsMessages(n.Filter.Kernel.Work) {
				return nil, fmt.Errorf("exec: filter %s sends messages; use a pipelined plan or the sequential Engine", n.Name)
			}
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(assign) != len(g.Nodes) {
		return nil, fmt.Errorf("exec: assignment covers %d of %d nodes", len(assign), len(g.Nodes))
	}
	for id, w := range assign {
		if w < 0 || w >= workers {
			return nil, fmt.Errorf("exec: node %d assigned to worker %d of %d", id, w, workers)
		}
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	if depth < 1 {
		return nil, fmt.Errorf("exec: queue depth %d out of range (want >= 1 batches)", opts.QueueDepth)
	}
	if opts.CheckpointEvery < 0 {
		return nil, fmt.Errorf("exec: checkpoint interval %d out of range (want >= 0 iterations)", opts.CheckpointEvery)
	}
	me := &MappedEngine{G: g, Sch: s, Backend: opts.Backend, Workers: workers,
		Assign: append([]int(nil), assign...), Depth: depth,
		Watchdog: opts.Watchdog, CheckpointEvery: opts.CheckpointEvery, rec: opts.Trace}
	if opts.LocalWorkers != nil {
		if len(opts.LocalWorkers) != workers {
			return nil, fmt.Errorf("exec: LocalWorkers masks %d of %d workers", len(opts.LocalWorkers), workers)
		}
		if opts.Stages != nil {
			return nil, fmt.Errorf("exec: sharded execution requires a lockstep plan (no Stages)")
		}
		me.local = append([]bool(nil), opts.LocalWorkers...)
		me.remote = opts.Remote
	}
	if opts.Stages != nil {
		sw, err := newSWPState(g, s, opts, me.Assign)
		if err != nil {
			return nil, err
		}
		me.swp = sw
	}
	if opts.Elastic {
		es, err := newElasticState(opts)
		if err != nil {
			return nil, err
		}
		me.elastic = es
	}
	if opts.Profile || opts.Elastic {
		// The elastic detector reads the profiler's work counters, so
		// Elastic forces profiling on.
		me.prof = obs.NewProfiler(nodeNames(g))
	}
	sup, err := newSupervisor(g, opts)
	if err != nil {
		return nil, err
	}
	me.sup = sup

	me.nodes = make([]*pnodeRT, len(g.Nodes))
	for _, n := range g.Nodes {
		rt := &pnodeRT{node: n, carry: make([][]float64, len(n.In))}
		if n.Kind == ir.NodeFilter {
			k := n.Filter.Kernel
			rt.state = k.NewState()
			if k.Init != nil {
				env := wfunc.NewEnv(k.Init)
				env.State = rt.state
				if err := wfunc.Exec(k.Init, env); err != nil {
					return nil, fmt.Errorf("init of %s: %w", n.Name, err)
				}
			}
		}
		me.nodes[n.ID] = rt
	}
	if err := me.buildTopology(); err != nil {
		return nil, err
	}
	return me, nil
}

// SupervisionReport renders per-filter recovery counters.
func (me *MappedEngine) SupervisionReport() string { return me.sup.Report() }

// Degraded returns per-filter recovery counters (nil when unsupervised).
func (me *MappedEngine) Degraded() map[string]DegradedStats {
	if me.sup == nil {
		return nil
	}
	return me.sup.Stats()
}

// Profile returns the per-filter profiler (nil when profiling is off).
func (me *MappedEngine) Profile() *obs.Profiler { return me.prof }

// TraceRecorder returns the trace recorder (nil when tracing is off).
func (me *MappedEngine) TraceRecorder() *obs.Recorder { return me.rec }

// mnodeCtx is the per-node execution context a worker prepares once per
// epoch: the node's tapes over the shared edge queues and its runner.
type mnodeCtx struct {
	rt      *pnodeRT
	runner  *workRunner
	in, out []*SliceQueue
	// local[p] reports that out[p] is a same-worker queue written in
	// place; others are staging queues drained into channel batches.
	localOut  []bool
	tIn, tOut wfunc.Tape
	produce   []int
	reps      int
	pst       *obs.FilterStats
	// msg and partial are set only on message-sending filters of pipelined
	// plans: the messenger handed to the work runner, and the node's
	// mid-firing progress-tape movement (swpState.partial slot).
	msg     wfunc.Messenger
	partial *int64
}

// workerCrash is the panic payload of an injected worker crash. The
// worker's deferred recover catches it and hands it to the epoch driver,
// which rolls back to the last coordinated checkpoint and re-plans onto
// the surviving workers.
type workerCrash struct {
	worker int
	iter   int64
}

func (c *workerCrash) Error() string {
	return fmt.Sprintf("exec: worker %d crashed at iteration %d", c.worker, c.iter)
}

// Run executes the initialization phase sequentially and then iters
// steady-state iterations across the worker set. Every call re-runs
// initialization from scratch (restarting the stream); use
// RunFromCheckpoint to resume a prior position instead.
func (me *MappedEngine) Run(iters int) error {
	if err := me.setup(); err != nil {
		return err
	}
	if sw := me.swp; sw != nil {
		sw.base, sw.segIters = 0, int64(iters)
		return me.runCycles()
	}
	return me.runSteady(iters)
}

// setup re-initializes the engine: initialization runs on a scratch
// sequential engine sharing our node states (the same scheme as the
// parallel engine), the steady topology is rebuilt, and the consumer
// queues are seeded with the init residue (peek margins).
func (me *MappedEngine) setup() error {
	seq, err := NewFromGraph(me.G, me.Sch)
	if err != nil {
		return err
	}
	for _, n := range me.G.Nodes {
		me.nodes[n.ID].state = seq.nodes[n.ID].state
	}
	seq.adoptObs(me.prof, me.rec)
	if err := seq.RunInit(); err != nil {
		return err
	}
	me.initCounters()
	for _, n := range me.G.Nodes {
		rt := me.nodes[n.ID]
		rt.fired = seq.nodes[n.ID].fired
		if rt.fired != me.initFired[n.ID] {
			return fmt.Errorf("exec: internal: %s fired %d times during init, schedule says %d", n.Name, rt.fired, me.initFired[n.ID])
		}
	}
	if err := me.buildTopology(); err != nil {
		return err
	}
	for _, e := range me.G.Edges {
		ch := seq.chans[e.ID]
		buf := make([]float64, ch.Len())
		for i := range buf {
			buf[i] = ch.Pop()
		}
		q := me.queues[e.ID]
		q.buf, q.head = buf, 0
	}
	if sw := me.swp; sw != nil {
		// Initialization may leave teleport messages in flight; adopt them
		// from the scratch engine, and zero the mid-firing progress counters.
		if sw.pending != nil {
			for i := range sw.pending {
				sw.pending[i] = append([]*message(nil), seq.pending[i]...)
			}
		}
		for i := range sw.partial {
			sw.partial[i] = 0
		}
	}
	me.iter = 0
	me.lastImg = nil
	me.ready = true
	return nil
}

// buildTopology derives the per-worker node lists, edge queues, and
// status table from the current Workers/Assign (initially and again after
// crash recovery shrinks the worker set).
func (me *MappedEngine) buildTopology() error {
	topo, err := me.G.TopoOrder()
	if err != nil {
		return err
	}
	me.order = make([][]*ir.Node, me.Workers)
	for _, n := range topo {
		w := me.Assign[n.ID]
		if !me.localWorker(w) {
			continue
		}
		me.order[w] = append(me.order[w], n)
	}
	me.queues = make([]*SliceQueue, len(me.G.Edges))
	me.stage = make([]*SliceQueue, len(me.G.Edges))
	me.chans = make([]chan []float64, len(me.G.Edges))
	me.remoteIn = make([]bool, len(me.G.Edges))
	me.remoteOut = make([]bool, len(me.G.Edges))
	for _, e := range me.G.Edges {
		me.queues[e.ID] = &SliceQueue{}
		srcLocal, dstLocal := me.localWorker(me.Assign[e.Src.ID]), me.localWorker(me.Assign[e.Dst.ID])
		switch {
		case srcLocal && dstLocal:
			if me.Assign[e.Src.ID] != me.Assign[e.Dst.ID] {
				me.stage[e.ID] = &SliceQueue{}
				me.chans[e.ID] = make(chan []float64, me.Depth)
			}
		case srcLocal:
			// Producer here, consumer on a peer shard: stage the batch and
			// ship it through the remote transport each iteration.
			if me.remote == nil {
				return fmt.Errorf("exec: edge %s crosses the shard boundary but no remote transport is configured", e)
			}
			me.remoteOut[e.ID] = true
			me.stage[e.ID] = &SliceQueue{}
		case dstLocal:
			if me.remote == nil {
				return fmt.Errorf("exec: edge %s crosses the shard boundary but no remote transport is configured", e)
			}
			me.remoteIn[e.ID] = true
		}
	}
	me.statuses = make([]*nodeStatus, len(me.G.Nodes))
	for _, n := range me.G.Nodes {
		st := newNodeStatus(n.Name)
		st.worker = me.Assign[n.ID]
		me.statuses[n.ID] = st
	}
	return nil
}

// runSteady drives iters steady iterations from the current position in
// checkpointed epochs, recovering from injected worker crashes.
func (me *MappedEngine) runSteady(iters int) error {
	return me.driveTo(me.iter + int64(iters))
}

// driveTo runs epochs until me.iter reaches end — steady iterations on
// lockstep plans, macro-cycles on pipelined ones — rolling back to the
// last coordinated checkpoint on injected worker crashes.
func (me *MappedEngine) driveTo(end int64) error {
	every := me.CheckpointEvery
	if every <= 0 && me.sup.hasWorkerFaults() {
		// Crash recovery needs a rollback target; default to the finest
		// granularity so a crash replays at most one iteration.
		every = 1
	}
	if me.elastic != nil {
		// Elastic re-plans happen at checkpoint barriers (the replan
		// restores the barrier image onto the new topology), so the
		// controller needs barriers at least every observation window.
		if every <= 0 || int64(every) > me.elastic.window {
			every = int(me.elastic.window)
		}
		me.elasticReset()
	}
	if every > 0 {
		if err := me.snapshot(); err != nil {
			return err
		}
	}
	for me.iter < end {
		n := int(end - me.iter)
		if every > 0 && n > every {
			n = every
		}
		if err := me.runEpoch(n); err != nil {
			var wc *workerCrash
			if errors.As(err, &wc) && me.lastImg != nil {
				if rerr := me.recoverFromCrash(wc); rerr != nil {
					return rerr
				}
				continue
			}
			return err
		}
		me.iter += int64(n)
		if every > 0 {
			if err := me.snapshot(); err != nil {
				return err
			}
		}
		if me.elastic != nil && me.iter < end {
			if err := me.elasticStep(); err != nil {
				return err
			}
		}
	}
	return nil
}

// snapshot records the coordinated checkpoint at the current barrier.
func (me *MappedEngine) snapshot() error {
	var buf sliceBuffer
	if err := me.WriteCheckpoint(&buf, me.iter); err != nil {
		return err
	}
	me.lastImg = buf
	if me.rec != nil {
		me.rec.Instant(len(me.G.Nodes), "checkpoint", "checkpoint",
			fmt.Sprintf("iteration %d (%d bytes)", me.iter, len(buf)))
	}
	return nil
}

// sliceBuffer is a minimal io.Writer over an owned byte slice.
type sliceBuffer []byte

func (b *sliceBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// runEpoch runs iters steady iterations across the worker set and waits
// for the barrier. On return without error every channel is drained and
// the engine state is at a consistent iteration boundary.
func (me *MappedEngine) runEpoch(iters int) error {
	me.stopCh = make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(me.stopCh) }) }
	atomic.StoreInt64(&me.progress, 0)
	for _, st := range me.statuses {
		st.set(stRunning, "", 0, -1)
	}
	var wd *watchdog
	if me.Watchdog >= 0 {
		interval := me.Watchdog
		if interval == 0 {
			interval = DefaultWatchdogInterval
		}
		wd = newWatchdog("mapped", interval, &me.progress, me.statuses, stopAll)
	}

	// Worker trace lanes sit above the node and schedule lanes.
	laneBase := len(me.G.Nodes) + 1
	if me.rec != nil {
		for w := 0; w < me.Workers; w++ {
			if len(me.order[w]) > 0 {
				me.rec.Lane(laneBase+w, fmt.Sprintf("worker %d (%d nodes)", w, len(me.order[w])))
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, me.Workers)
	for w := 0; w < me.Workers; w++ {
		if len(me.order[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := me.runWorker(w, laneBase+w, iters); err != nil {
				if err != errStopped {
					errs <- err
				}
				stopAll()
			}
		}(w)
	}
	wg.Wait()
	if wd != nil {
		wd.close()
		if derr := wd.error(); derr != nil {
			return derr
		}
	}
	close(errs)
	// A crash is recoverable; any other failure wins over it.
	var crash *workerCrash
	for err := range errs {
		var wc *workerCrash
		if errors.As(err, &wc) {
			if crash == nil {
				crash = wc
			}
			continue
		}
		if err != nil {
			return err
		}
	}
	if crash != nil {
		return crash
	}
	return nil
}

// recoverFromCrash degrades the engine onto the surviving workers: count
// the crash, re-plan the assignment, rebuild the topology, and roll back
// to the last coordinated checkpoint.
func (me *MappedEngine) recoverFromCrash(wc *workerCrash) error {
	if me.Workers <= 1 {
		return &ExecError{Filter: fmt.Sprintf("worker %d", wc.worker), Op: "crash",
			Iteration: wc.iter, Err: fmt.Errorf("no surviving workers to recover onto")}
	}
	name := fmt.Sprintf("worker%d", wc.worker)
	me.sup.noteCrash(name)
	traceRecovery(me.rec, len(me.G.Nodes)+1+wc.worker, name, "replan")
	survivors := me.Workers - 1
	var assign []int
	if me.Replan != nil {
		assign = me.Replan(survivors)
	}
	if !validAssign(assign, len(me.G.Nodes), survivors) || !me.clustersIntact(assign) {
		assign = me.reassignWithout(wc.worker)
	}
	me.Workers = survivors
	me.Assign = assign
	if err := me.buildTopology(); err != nil {
		return err
	}
	if err := me.applyImage(me.lastImg); err != nil {
		return fmt.Errorf("exec: rollback after worker %d crash: %w", wc.worker, err)
	}
	return nil
}

// validAssign checks a replanned assignment covers every node within the
// worker range.
func validAssign(assign []int, nodes, workers int) bool {
	if len(assign) != nodes {
		return false
	}
	for _, w := range assign {
		if w < 0 || w >= workers {
			return false
		}
	}
	return true
}

// clustersIntact reports whether a replanned assignment keeps every stage
// cluster on a single worker (vacuously true for lockstep plans).
func (me *MappedEngine) clustersIntact(assign []int) bool {
	if me.swp == nil {
		return true
	}
	for _, members := range me.swp.clusters {
		for _, id := range members[1:] {
			if assign[id] != assign[members[0]] {
				return false
			}
		}
	}
	return true
}

// reassignWithout is the fallback re-plan: the dead worker's nodes move to
// the least-loaded survivors (by node count) and the survivors renumber
// densely to 0..Workers-2. Pipelined stage clusters move as a unit so they
// stay on one worker.
func (me *MappedEngine) reassignWithout(dead int) []int {
	load := make([]int, me.Workers)
	for _, w := range me.Assign {
		load[w]++
	}
	renum := make([]int, me.Workers)
	next := 0
	for w := range renum {
		if w == dead {
			renum[w] = -1
			continue
		}
		renum[w] = next
		next++
	}
	unitOf := func(id int) []int {
		if me.swp != nil {
			if ci := me.swp.clusterOf[id]; ci >= 0 {
				return me.swp.clusters[ci]
			}
		}
		return nil
	}
	assign := make([]int, len(me.Assign))
	seen := make([]bool, len(me.Assign))
	for id, w := range me.Assign {
		if seen[id] {
			continue
		}
		unit := unitOf(id)
		if unit == nil {
			unit = []int{id}
		}
		for _, m := range unit {
			seen[m] = true
		}
		if w != dead {
			for _, m := range unit {
				assign[m] = renum[w]
			}
			continue
		}
		best := -1
		for sw := 0; sw < me.Workers; sw++ {
			if sw == dead {
				continue
			}
			if best < 0 || load[sw] < load[best] {
				best = sw
			}
		}
		load[best] += len(unit)
		for _, m := range unit {
			assign[m] = renum[best]
		}
	}
	return assign
}

// runWorker drives one worker's node list through iters steady iterations
// (or, pipelined, iters macro-cycles) of the current epoch.
func (me *MappedEngine) runWorker(w, lane, iters int) error {
	if me.swp != nil {
		return me.runWorkerSWP(w, lane, iters)
	}
	ctxs := make([]*mnodeCtx, 0, len(me.order[w]))
	// compact lists this worker's purely-local queues: only their owner
	// touches them, and their per-item Push/Pop traffic never passes
	// through Append's compaction.
	var compact []*SliceQueue
	for _, n := range me.order[w] {
		ctxs = append(ctxs, me.prepareNode(n))
	}
	for _, e := range me.G.Edges {
		if me.Assign[e.Src.ID] == w && me.Assign[e.Dst.ID] == w {
			compact = append(compact, me.queues[e.ID])
		}
	}

	var cur *mnodeCtx // the node currently firing, for fault attribution
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if wc, ok := r.(*workerCrash); ok {
					err = wc
					return
				}
				name, fired := fmt.Sprintf("worker %d", w), int64(0)
				if cur != nil {
					name, fired = cur.rt.node.Name, cur.rt.fired
				}
				err = asExecError(name, fired, r)
			}
		}()
		for it := 0; it < iters; it++ {
			if me.sup != nil {
				gi := me.iter + int64(it)
				if wf, ok := me.sup.takeWorker(w, gi); ok {
					if err := me.workerFault(w, lane, gi, wf, ctxs); err != nil {
						return err
					}
				}
			}
			var t0 time.Duration
			if me.rec != nil {
				t0 = me.rec.Stamp()
			}
			for _, c := range ctxs {
				cur = c
				if err := me.stepNode(c); err != nil {
					return err
				}
			}
			cur = nil
			for _, q := range compact {
				q.Compact()
			}
			if me.rec != nil {
				end := me.rec.Stamp()
				me.rec.Slice(lane, fmt.Sprintf("worker %d", w), "iteration", t0, end)
			}
		}
		return nil
	}()
	for _, c := range ctxs {
		me.statuses[c.rt.node.ID].set(stDone, "", 0, -1)
	}
	return err
}

// workerFault applies one injected worker-level fault at the top of a
// steady iteration, before the worker fires anything: Crash panics (the
// recover in runWorker hands it to the epoch driver for rollback), Stall
// wedges the worker for the watchdog to attribute, Slow sleeps briefly.
func (me *MappedEngine) workerFault(w, lane int, iter int64, wf faults.WorkerFault, ctxs []*mnodeCtx) error {
	name := fmt.Sprintf("worker%d", w)
	traceFault(me.rec, lane, name, wf.Kind.String())
	switch wf.Kind {
	case faults.Crash:
		panic(&workerCrash{worker: w, iter: iter})
	case faults.Stall:
		for _, c := range ctxs {
			me.statuses[c.rt.node.ID].set(stStalled, "", 0, -1)
		}
		<-me.stopCh
		return errStopped
	case faults.Slow:
		me.sup.noteSlow(name)
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// prepareNode builds one node's tapes over the shared per-edge queues.
func (me *MappedEngine) prepareNode(n *ir.Node) *mnodeCtx {
	rt := me.nodes[n.ID]
	c := &mnodeCtx{rt: rt, reps: me.Sch.Reps[n.ID]}
	if n.Kind == ir.NodeFilter && n.Filter.WorkFn == nil {
		c.runner = newWorkRunner(n.Filter.Kernel, rt.state, me.Backend)
	}
	c.in = make([]*SliceQueue, len(n.In))
	for p, e := range n.In {
		if e != nil {
			c.in[p] = me.queues[e.ID]
		}
	}
	c.out = make([]*SliceQueue, len(n.Out))
	c.localOut = make([]bool, len(n.Out))
	c.produce = make([]int, len(n.Out))
	for p, e := range n.Out {
		if e == nil {
			continue
		}
		c.produce[p] = c.reps * n.PushPort(p)
		if me.stage[e.ID] != nil {
			c.out[p] = me.stage[e.ID]
		} else {
			c.out[p] = me.queues[e.ID]
			c.localOut[p] = true
		}
	}
	if me.prof != nil {
		c.pst = me.prof.At(n.ID)
	}
	if n.Kind == ir.NodeFilter {
		if len(n.In) > 0 && n.In[0] != nil {
			c.tIn = c.in[0]
			if c.pst != nil {
				c.tIn = &obsTape{inner: c.in[0], st: c.pst}
			}
		}
		if len(n.Out) > 0 && n.Out[0] != nil {
			c.tOut = c.out[0]
			if c.pst != nil {
				c.tOut = &obsTape{inner: c.out[0], st: c.pst, lenFn: c.out[0].Len}
			}
		}
	}
	if sw := me.swp; sw != nil && n.Kind == ir.NodeFilter && sw.sends[n.ID] {
		// Message sends compute sdep windows from live progress counters;
		// partialTape counts the progress tape's movement inside the
		// current firing so mid-firing sends see the sequential engine's
		// exact counter values.
		c.msg = &msender{me: me, node: n}
		c.partial = &sw.partial[n.ID]
		if n.OutEdge() != nil {
			if c.tOut != nil {
				c.tOut = &partialTape{inner: c.tOut, count: c.partial}
			}
		} else if c.tIn != nil {
			c.tIn = &partialTape{inner: c.tIn, count: c.partial, pops: true}
		}
	}
	return c
}

// stepNode advances one node by one steady iteration: receive cross-worker
// input batches, fire reps times, ship cross-worker output batches.
func (me *MappedEngine) stepNode(c *mnodeCtx) error {
	n := c.rt.node
	st := me.statuses[n.ID]
	for p, e := range n.In {
		if e == nil {
			continue
		}
		if me.remoteIn != nil && me.remoteIn[e.ID] {
			batch, err := me.remote.Recv(e.ID, me.stopCh)
			if err != nil {
				if errors.Is(err, ErrRemoteStopped) {
					return errStopped
				}
				return err
			}
			c.in[p].Append(batch)
			continue
		}
		if me.chans[e.ID] == nil {
			continue
		}
		batch, err := me.recvBatch(n, e, me.chans[e.ID], c.in[p], st)
		if err != nil {
			return err
		}
		c.in[p].Append(batch)
	}
	for r := 0; r < c.reps; r++ {
		if err := me.fireTimed(c, st); err != nil {
			return err
		}
		if c.pst != nil {
			c.pst.AddFiring()
		}
		c.rt.fired++
		atomic.AddInt64(&me.progress, 1)
	}
	for p, e := range n.Out {
		if e == nil || c.localOut[p] {
			continue
		}
		batch := c.out[p].Take(c.produce[p])
		if me.remoteOut != nil && me.remoteOut[e.ID] {
			if err := me.remote.Send(e.ID, batch, me.stopCh); err != nil {
				if errors.Is(err, ErrRemoteStopped) {
					return errStopped
				}
				return err
			}
			continue
		}
		if err := me.sendBatch(e, me.chans[e.ID], batch, st); err != nil {
			return err
		}
	}
	return nil
}

// recvBatch mirrors the parallel engine's: record the wait state while
// blocked so the watchdog can trace who waits on whom, and unwind when the
// run aborts.
func (me *MappedEngine) recvBatch(n *ir.Node, e *ir.Edge, ch chan []float64, q *SliceQueue, st *nodeStatus) ([]float64, error) {
	select {
	case batch := <-ch:
		atomic.AddInt64(&me.progress, 1)
		return batch, nil
	default:
	}
	st.set(stWaitRecv, e.String(), q.Len(), e.Src.ID)
	defer st.set(stRunning, "", 0, -1)
	if me.prof != nil {
		t0 := time.Now()
		defer func() { me.prof.At(n.ID).AddStall(time.Since(t0)) }()
	}
	select {
	case batch := <-ch:
		atomic.AddInt64(&me.progress, 1)
		return batch, nil
	case <-me.stopCh:
		return nil, errStopped
	}
}

// sendBatch ships one batch, recording the wait state while blocked.
func (me *MappedEngine) sendBatch(e *ir.Edge, ch chan []float64, batch []float64, st *nodeStatus) error {
	select {
	case ch <- batch:
		atomic.AddInt64(&me.progress, 1)
		return nil
	default:
	}
	st.set(stWaitSend, e.String(), len(batch), e.Dst.ID)
	defer st.set(stRunning, "", 0, -1)
	if me.prof != nil {
		t0 := time.Now()
		defer func() { me.prof.At(e.Src.ID).AddStall(time.Since(t0)) }()
	}
	select {
	case ch <- batch:
		atomic.AddInt64(&me.progress, 1)
		return nil
	case <-me.stopCh:
		return errStopped
	}
}

// fireTimed is fireOnce under the observability stamps (work time, firing
// slices) shared by the lockstep and pipelined stepping paths.
func (me *MappedEngine) fireTimed(c *mnodeCtx, st *nodeStatus) error {
	if c.pst == nil && me.rec == nil {
		return me.fireOnce(c, st)
	}
	n := c.rt.node
	start := time.Now()
	err := me.fireOnce(c, st)
	d := time.Since(start)
	if c.pst != nil {
		if n.Kind == ir.NodeFilter {
			c.pst.AddWork(d)
		} else {
			profileSJ(c.pst, n)
		}
	}
	if me.rec != nil && n.Kind == ir.NodeFilter {
		end := me.rec.Stamp()
		me.rec.Slice(n.ID, n.Name, "firing", end-d, end)
	}
	return err
}

// fireOnce executes one firing of the node on its queues (mirroring the
// parallel engine's firing semantics, including supervision).
func (me *MappedEngine) fireOnce(c *mnodeCtx, st *nodeStatus) error {
	n := c.rt.node
	switch n.Kind {
	case ir.NodeFilter:
		if me.sup != nil {
			return me.fireFilterSupervised(c, st)
		}
		if c.partial != nil {
			*c.partial = 0
		}
		if c.rt.override != nil {
			c.rt.override(c.tIn, c.tOut)
			return nil
		}
		if n.Filter.WorkFn != nil {
			n.Filter.WorkFn(c.tIn, c.tOut, c.rt.state)
			return nil
		}
		if err := c.runner.run(c.tIn, c.tOut, c.msg, nil); err != nil {
			return &ExecError{Filter: n.Name, Op: "work", Iteration: c.rt.fired, Err: err}
		}
		return nil
	case ir.NodeSplitter:
		if n.SJ.Kind == ir.SJDuplicate {
			v := c.in[0].Pop()
			for p, e := range n.Out {
				if e != nil {
					c.out[p].Push(v)
				}
			}
			return nil
		}
		for p, e := range n.Out {
			for k := 0; k < n.SJ.Weights[p]; k++ {
				v := c.in[0].Pop()
				if e != nil {
					c.out[p].Push(v)
				}
			}
		}
		return nil
	case ir.NodeJoiner:
		for p, e := range n.In {
			if e == nil {
				continue
			}
			for k := 0; k < n.SJ.Weights[p]; k++ {
				c.out[0].Push(c.in[p].Pop())
			}
		}
		return nil
	}
	return fmt.Errorf("exec: unknown node kind")
}

// fireFilterSupervised wraps one filter firing in the fault injector and
// the filter's recovery policy (the parallel engine's semantics on the
// shared queues).
func (me *MappedEngine) fireFilterSupervised(c *mnodeCtx, st *nodeStatus) error {
	rt := c.rt
	n := rt.node
	name := n.Name
	pol := me.sup.pol.For(name)
	rollback := pol.Action != faults.Fail
	var qIn, qOut *SliceQueue
	if len(c.in) > 0 && n.In[0] != nil {
		qIn = c.in[0]
	}
	if len(c.out) > 0 && n.Out[0] != nil {
		qOut = c.out[0]
	}
	var inHead, outLen int
	var stateSave *wfunc.State
	if rollback {
		if qIn != nil {
			inHead = qIn.head
		}
		if qOut != nil {
			outLen = len(qOut.buf)
		}
		if rt.state != nil {
			stateSave = rt.state.Clone()
		}
	}
	restore := func() {
		if qIn != nil {
			qIn.head = inHead
		}
		if qOut != nil {
			qOut.buf = qOut.buf[:outLen]
		}
		if stateSave != nil {
			rt.state = stateSave.Clone()
			if c.runner != nil {
				c.runner.setState(rt.state)
			}
		}
	}
	attempt := func(fault faults.Fault, injected bool) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = asExecError(name, rt.fired, r)
			}
		}()
		if injected {
			switch fault.Kind {
			case faults.Panic:
				return &ExecError{Filter: name, Op: "injected panic", Iteration: rt.fired}
			case faults.Stall:
				if rollback {
					// A recoverable policy turns the stall into a synchronous
					// failure (the sequential engine's convention), so
					// retry/skip/restart actually recover instead of wedging
					// the worker until the watchdog aborts the run.
					return &ExecError{Filter: name, Op: "injected stall", Iteration: rt.fired,
						Err: fmt.Errorf("stall reported synchronously under a %s policy", pol.Action)}
				}
				st.set(stStalled, "", 0, -1)
				<-me.stopCh
				return errStopped
			}
		}
		// Each attempt starts with a clean mid-firing progress counter
		// (rollback rewound the tapes it mirrors).
		if c.partial != nil {
			*c.partial = 0
		}
		wOut := c.tOut
		if injected && fault.Kind == faults.Corrupt {
			wOut = corruptOut(wOut)
		}
		if rt.override != nil {
			rt.override(c.tIn, wOut)
			return nil
		}
		if n.Filter.WorkFn != nil {
			n.Filter.WorkFn(c.tIn, wOut, rt.state)
			return nil
		}
		if err := c.runner.run(c.tIn, wOut, c.msg, nil); err != nil {
			return &ExecError{Filter: name, Op: "work", Iteration: rt.fired, Err: err}
		}
		return nil
	}
	fault, injected := me.sup.take(name, rt.fired)
	if injected {
		traceFault(me.rec, n.ID, name, fault.Kind.String())
	}
	err := attempt(fault, injected)
	if err == nil || err == errStopped {
		return err
	}
	switch pol.Action {
	case faults.Retry:
		for a := 1; a <= pol.Retries; a++ {
			me.sup.noteRetry(name)
			traceRecovery(me.rec, n.ID, name, "retry")
			if pol.Backoff > 0 {
				time.Sleep(time.Duration(a) * pol.Backoff)
			}
			restore()
			if err = attempt(faults.Fault{}, false); err == nil || err == errStopped {
				return err
			}
		}
		return fmt.Errorf("exec: %d retries exhausted: %w", pol.Retries, err)
	case faults.Skip:
		restore()
		me.sup.noteSkip(name)
		traceRecovery(me.rec, n.ID, name, "skip")
		skipFiring(n, c.tIn, c.tOut)
		return nil
	case faults.Restart:
		restore()
		stFresh, serr := freshState(n)
		if serr != nil {
			return serr
		}
		rt.state = stFresh
		if c.runner != nil {
			c.runner.setState(stFresh)
		}
		me.sup.noteRestart(name)
		traceRecovery(me.rec, n.ID, name, "restart")
		if err = attempt(faults.Fault{}, false); err != nil && err != errStopped {
			return fmt.Errorf("exec: restart did not recover: %w", err)
		}
		return err
	}
	return err
}

// WorkerOf reports the worker a node runs on (diagnostics).
func (me *MappedEngine) WorkerOf(id int) int { return me.Assign[id] }

// PartitionSizes returns per-worker node counts, sorted descending
// (diagnostics and tests).
func (me *MappedEngine) PartitionSizes() []int {
	sizes := make([]int, 0, me.Workers)
	for w := 0; w < me.Workers; w++ {
		if len(me.order[w]) > 0 {
			sizes = append(sizes, len(me.order[w]))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
