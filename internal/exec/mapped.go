package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// MappedEngine executes a flattened stream graph on a fixed set of worker
// goroutines — one per fused partition, default GOMAXPROCS — instead of
// one per filter. Each worker fires its assigned nodes in global
// topological order once per steady iteration; edges between nodes on the
// same worker are plain in-memory queues, edges crossing workers are
// batched SPSC channels carrying one steady iteration's items per batch.
//
// This is the host-execution form of the partitioner's coarse-grained
// plans: the ExecPlan rewrite (fusion + executable fission) shrinks the
// graph, and the worker assignment packs it onto cores, so synchronization
// cost scales with the partition count, not the filter count. Results are
// bit-identical to the sequential Engine.
//
// Deadlock-freedom: every worker visits its nodes in a common linear
// extension of the dataflow order and every edge carries exactly one batch
// per iteration, so the worker holding the globally earliest incomplete
// firing always has its inputs available and its output channel short of
// capacity — it can always progress. A watchdog still supervises the run
// (fault injection can wedge it deliberately).
type MappedEngine struct {
	G   *ir.Graph
	Sch *sched.Schedule
	// Backend is the work-function execution substrate.
	Backend Backend
	// Workers is the worker-goroutine count; Assign[n.ID] names each
	// node's worker.
	Workers int
	Assign  []int

	// Depth is the cross-worker channel buffering in batches (default 2).
	Depth int

	// Watchdog is the stall-detection interval: 0 selects
	// DefaultWatchdogInterval, negative disables detection.
	Watchdog time.Duration

	sup *supervisor

	nodes []*pnodeRT
	order [][]*ir.Node // per-worker node lists in topological order

	// prof and rec are the observability hooks; nil when disabled.
	prof *obs.Profiler
	rec  *obs.Recorder

	// Per-run supervision state.
	stopCh   chan struct{}
	progress int64
	statuses []*nodeStatus
}

// NewMapped prepares a mapped engine on the default backend with every
// node assigned by the caller; workers <= 0 selects GOMAXPROCS.
func NewMapped(g *ir.Graph, s *sched.Schedule, assign []int, workers int) (*MappedEngine, error) {
	return NewMappedOpts(g, s, assign, workers, Options{Backend: BackendVM})
}

// NewMappedOpts is the full-option constructor. The graph restrictions
// match the parallel engine's: no teleport messaging, no feedback loops.
func NewMappedOpts(g *ir.Graph, s *sched.Schedule, assign []int, workers int, opts Options) (*MappedEngine, error) {
	if len(g.Portals) > 0 || len(g.Constraints) > 0 {
		return nil, fmt.Errorf("exec: the mapped backend does not support teleport messaging; use the sequential Engine")
	}
	for _, e := range g.Edges {
		if e.Back {
			return nil, fmt.Errorf("exec: feedback loops need finer-than-batch interleaving; use the sequential Engine")
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter && wfunc.SendsMessages(n.Filter.Kernel.Work) {
			return nil, fmt.Errorf("exec: filter %s sends messages; use the sequential Engine", n.Name)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(assign) != len(g.Nodes) {
		return nil, fmt.Errorf("exec: assignment covers %d of %d nodes", len(assign), len(g.Nodes))
	}
	for id, w := range assign {
		if w < 0 || w >= workers {
			return nil, fmt.Errorf("exec: node %d assigned to worker %d of %d", id, w, workers)
		}
	}
	me := &MappedEngine{G: g, Sch: s, Backend: opts.Backend, Workers: workers,
		Assign: append([]int(nil), assign...), Depth: 2, Watchdog: opts.Watchdog, rec: opts.Trace}
	if opts.Profile {
		me.prof = obs.NewProfiler(nodeNames(g))
	}
	sup, err := newSupervisor(g, opts)
	if err != nil {
		return nil, err
	}
	me.sup = sup

	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	me.order = make([][]*ir.Node, workers)
	for _, n := range topo {
		w := me.Assign[n.ID]
		me.order[w] = append(me.order[w], n)
	}

	me.nodes = make([]*pnodeRT, len(g.Nodes))
	for _, n := range g.Nodes {
		rt := &pnodeRT{node: n, carry: make([][]float64, len(n.In))}
		if n.Kind == ir.NodeFilter {
			k := n.Filter.Kernel
			rt.state = k.NewState()
			if k.Init != nil {
				env := wfunc.NewEnv(k.Init)
				env.State = rt.state
				if err := wfunc.Exec(k.Init, env); err != nil {
					return nil, fmt.Errorf("init of %s: %w", n.Name, err)
				}
			}
		}
		me.nodes[n.ID] = rt
	}
	return me, nil
}

// SupervisionReport renders per-filter recovery counters.
func (me *MappedEngine) SupervisionReport() string { return me.sup.Report() }

// Degraded returns per-filter recovery counters (nil when unsupervised).
func (me *MappedEngine) Degraded() map[string]DegradedStats {
	if me.sup == nil {
		return nil
	}
	return me.sup.Stats()
}

// Profile returns the per-filter profiler (nil when profiling is off).
func (me *MappedEngine) Profile() *obs.Profiler { return me.prof }

// TraceRecorder returns the trace recorder (nil when tracing is off).
func (me *MappedEngine) TraceRecorder() *obs.Recorder { return me.rec }

// mnodeCtx is the per-node execution context a worker prepares once per
// run: the node's tapes over the shared edge queues and its runner.
type mnodeCtx struct {
	rt      *pnodeRT
	runner  *workRunner
	in, out []*SliceQueue
	// local[p] reports that out[p] is a same-worker queue written in
	// place; others are staging queues drained into channel batches.
	localOut  []bool
	tIn, tOut wfunc.Tape
	produce   []int
	reps      int
	pst       *obs.FilterStats
}

// Run executes the initialization phase sequentially and then iters
// steady-state iterations across the worker set.
func (me *MappedEngine) Run(iters int) error {
	// Initialization runs on a scratch sequential engine sharing our node
	// states (the same scheme as the parallel engine).
	seq, err := NewFromGraph(me.G, me.Sch)
	if err != nil {
		return err
	}
	for _, n := range me.G.Nodes {
		me.nodes[n.ID].state = seq.nodes[n.ID].state
	}
	seq.adoptObs(me.prof, me.rec)
	if err := seq.RunInit(); err != nil {
		return err
	}

	// Per-edge queues: consumer-side buffers seeded with the init residue
	// (peek margins). Cross-worker edges additionally get a channel and a
	// producer-side staging queue.
	queues := make([]*SliceQueue, len(me.G.Edges))
	stage := make([]*SliceQueue, len(me.G.Edges))
	chans := make([]chan []float64, len(me.G.Edges))
	for _, e := range me.G.Edges {
		ch := seq.chans[e.ID]
		buf := make([]float64, ch.Len())
		for i := range buf {
			buf[i] = ch.Pop()
		}
		queues[e.ID] = &SliceQueue{buf: buf}
		if me.Assign[e.Src.ID] != me.Assign[e.Dst.ID] {
			stage[e.ID] = &SliceQueue{}
			chans[e.ID] = make(chan []float64, me.Depth)
		}
	}

	me.stopCh = make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(me.stopCh) }) }
	atomic.StoreInt64(&me.progress, 0)
	me.statuses = make([]*nodeStatus, len(me.G.Nodes))
	for _, n := range me.G.Nodes {
		me.statuses[n.ID] = newNodeStatus(n.Name)
	}
	var wd *watchdog
	if me.Watchdog >= 0 {
		interval := me.Watchdog
		if interval == 0 {
			interval = DefaultWatchdogInterval
		}
		wd = newWatchdog("mapped", interval, &me.progress, me.statuses, stopAll)
	}

	// Worker trace lanes sit above the node and schedule lanes.
	laneBase := len(me.G.Nodes) + 1
	if me.rec != nil {
		for w := 0; w < me.Workers; w++ {
			if len(me.order[w]) > 0 {
				me.rec.Lane(laneBase+w, fmt.Sprintf("worker %d (%d nodes)", w, len(me.order[w])))
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, me.Workers)
	for w := 0; w < me.Workers; w++ {
		if len(me.order[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := me.runWorker(w, laneBase+w, iters, queues, stage, chans); err != nil {
				if err != errStopped {
					errs <- err
				}
				stopAll()
			}
		}(w)
	}
	wg.Wait()
	if wd != nil {
		wd.close()
		if derr := wd.error(); derr != nil {
			return derr
		}
	}
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runWorker drives one worker's node list through iters steady iterations.
func (me *MappedEngine) runWorker(w, lane, iters int, queues, stage []*SliceQueue, chans []chan []float64) error {
	ctxs := make([]*mnodeCtx, 0, len(me.order[w]))
	// compact lists this worker's purely-local queues: only their owner
	// touches them, and their per-item Push/Pop traffic never passes
	// through Append's compaction.
	var compact []*SliceQueue
	for _, n := range me.order[w] {
		ctxs = append(ctxs, me.prepareNode(n, queues, stage, chans))
	}
	for _, e := range me.G.Edges {
		if me.Assign[e.Src.ID] == w && me.Assign[e.Dst.ID] == w {
			compact = append(compact, queues[e.ID])
		}
	}

	var cur *mnodeCtx // the node currently firing, for fault attribution
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				name, fired := fmt.Sprintf("worker %d", w), int64(0)
				if cur != nil {
					name, fired = cur.rt.node.Name, cur.rt.fired
				}
				err = asExecError(name, fired, r)
			}
		}()
		for it := 0; it < iters; it++ {
			var t0 time.Duration
			if me.rec != nil {
				t0 = me.rec.Stamp()
			}
			for _, c := range ctxs {
				cur = c
				if err := me.stepNode(c, queues, stage, chans); err != nil {
					return err
				}
			}
			cur = nil
			for _, q := range compact {
				q.Compact()
			}
			if me.rec != nil {
				end := me.rec.Stamp()
				me.rec.Slice(lane, fmt.Sprintf("worker %d", w), "iteration", t0, end)
			}
		}
		return nil
	}()
	for _, c := range ctxs {
		me.statuses[c.rt.node.ID].set(stDone, "", 0, -1)
	}
	return err
}

// prepareNode builds one node's tapes over the shared per-edge queues.
func (me *MappedEngine) prepareNode(n *ir.Node, queues, stage []*SliceQueue, chans []chan []float64) *mnodeCtx {
	rt := me.nodes[n.ID]
	c := &mnodeCtx{rt: rt, reps: me.Sch.Reps[n.ID]}
	if n.Kind == ir.NodeFilter && n.Filter.WorkFn == nil {
		c.runner = newWorkRunner(n.Filter.Kernel, rt.state, me.Backend)
	}
	c.in = make([]*SliceQueue, len(n.In))
	for p, e := range n.In {
		if e != nil {
			c.in[p] = queues[e.ID]
		}
	}
	c.out = make([]*SliceQueue, len(n.Out))
	c.localOut = make([]bool, len(n.Out))
	c.produce = make([]int, len(n.Out))
	for p, e := range n.Out {
		if e == nil {
			continue
		}
		c.produce[p] = c.reps * n.PushPort(p)
		if stage[e.ID] != nil {
			c.out[p] = stage[e.ID]
		} else {
			c.out[p] = queues[e.ID]
			c.localOut[p] = true
		}
	}
	if me.prof != nil {
		c.pst = me.prof.At(n.ID)
	}
	if n.Kind == ir.NodeFilter {
		if len(n.In) > 0 && n.In[0] != nil {
			c.tIn = c.in[0]
			if c.pst != nil {
				c.tIn = &obsTape{inner: c.in[0], st: c.pst}
			}
		}
		if len(n.Out) > 0 && n.Out[0] != nil {
			c.tOut = c.out[0]
			if c.pst != nil {
				c.tOut = &obsTape{inner: c.out[0], st: c.pst, lenFn: c.out[0].Len}
			}
		}
	}
	return c
}

// stepNode advances one node by one steady iteration: receive cross-worker
// input batches, fire reps times, ship cross-worker output batches.
func (me *MappedEngine) stepNode(c *mnodeCtx, queues, stage []*SliceQueue, chans []chan []float64) error {
	n := c.rt.node
	st := me.statuses[n.ID]
	for p, e := range n.In {
		if e == nil || chans[e.ID] == nil {
			continue
		}
		batch, err := me.recvBatch(n, e, chans[e.ID], c.in[p], st)
		if err != nil {
			return err
		}
		c.in[p].Append(batch)
	}
	for r := 0; r < c.reps; r++ {
		if c.pst == nil && me.rec == nil {
			if err := me.fireOnce(c, st); err != nil {
				return err
			}
		} else {
			start := time.Now()
			err := me.fireOnce(c, st)
			d := time.Since(start)
			if c.pst != nil {
				if n.Kind == ir.NodeFilter {
					c.pst.AddWork(d)
				} else {
					profileSJ(c.pst, n)
				}
			}
			if me.rec != nil && n.Kind == ir.NodeFilter {
				end := me.rec.Stamp()
				me.rec.Slice(n.ID, n.Name, "firing", end-d, end)
			}
			if err != nil {
				return err
			}
		}
		if c.pst != nil {
			c.pst.AddFiring()
		}
		c.rt.fired++
		atomic.AddInt64(&me.progress, 1)
	}
	for p, e := range n.Out {
		if e == nil || c.localOut[p] {
			continue
		}
		batch := c.out[p].Take(c.produce[p])
		if err := me.sendBatch(e, chans[e.ID], batch, st); err != nil {
			return err
		}
	}
	return nil
}

// recvBatch mirrors the parallel engine's: record the wait state while
// blocked so the watchdog can trace who waits on whom, and unwind when the
// run aborts.
func (me *MappedEngine) recvBatch(n *ir.Node, e *ir.Edge, ch chan []float64, q *SliceQueue, st *nodeStatus) ([]float64, error) {
	select {
	case batch := <-ch:
		atomic.AddInt64(&me.progress, 1)
		return batch, nil
	default:
	}
	st.set(stWaitRecv, e.String(), q.Len(), e.Src.ID)
	defer st.set(stRunning, "", 0, -1)
	if me.prof != nil {
		t0 := time.Now()
		defer func() { me.prof.At(n.ID).AddStall(time.Since(t0)) }()
	}
	select {
	case batch := <-ch:
		atomic.AddInt64(&me.progress, 1)
		return batch, nil
	case <-me.stopCh:
		return nil, errStopped
	}
}

// sendBatch ships one batch, recording the wait state while blocked.
func (me *MappedEngine) sendBatch(e *ir.Edge, ch chan []float64, batch []float64, st *nodeStatus) error {
	select {
	case ch <- batch:
		atomic.AddInt64(&me.progress, 1)
		return nil
	default:
	}
	st.set(stWaitSend, e.String(), len(batch), e.Dst.ID)
	defer st.set(stRunning, "", 0, -1)
	if me.prof != nil {
		t0 := time.Now()
		defer func() { me.prof.At(e.Src.ID).AddStall(time.Since(t0)) }()
	}
	select {
	case ch <- batch:
		atomic.AddInt64(&me.progress, 1)
		return nil
	case <-me.stopCh:
		return errStopped
	}
}

// fireOnce executes one firing of the node on its queues (mirroring the
// parallel engine's firing semantics, including supervision).
func (me *MappedEngine) fireOnce(c *mnodeCtx, st *nodeStatus) error {
	n := c.rt.node
	switch n.Kind {
	case ir.NodeFilter:
		if me.sup != nil {
			return me.fireFilterSupervised(c, st)
		}
		if n.Filter.WorkFn != nil {
			n.Filter.WorkFn(c.tIn, c.tOut, c.rt.state)
			return nil
		}
		if err := c.runner.run(c.tIn, c.tOut, nil, nil); err != nil {
			return &ExecError{Filter: n.Name, Op: "work", Iteration: c.rt.fired, Err: err}
		}
		return nil
	case ir.NodeSplitter:
		if n.SJ.Kind == ir.SJDuplicate {
			v := c.in[0].Pop()
			for p, e := range n.Out {
				if e != nil {
					c.out[p].Push(v)
				}
			}
			return nil
		}
		for p, e := range n.Out {
			for k := 0; k < n.SJ.Weights[p]; k++ {
				v := c.in[0].Pop()
				if e != nil {
					c.out[p].Push(v)
				}
			}
		}
		return nil
	case ir.NodeJoiner:
		for p, e := range n.In {
			if e == nil {
				continue
			}
			for k := 0; k < n.SJ.Weights[p]; k++ {
				c.out[0].Push(c.in[p].Pop())
			}
		}
		return nil
	}
	return fmt.Errorf("exec: unknown node kind")
}

// fireFilterSupervised wraps one filter firing in the fault injector and
// the filter's recovery policy (the parallel engine's semantics on the
// shared queues).
func (me *MappedEngine) fireFilterSupervised(c *mnodeCtx, st *nodeStatus) error {
	rt := c.rt
	n := rt.node
	name := n.Name
	pol := me.sup.pol.For(name)
	rollback := pol.Action != faults.Fail
	var qIn, qOut *SliceQueue
	if len(c.in) > 0 && n.In[0] != nil {
		qIn = c.in[0]
	}
	if len(c.out) > 0 && n.Out[0] != nil {
		qOut = c.out[0]
	}
	var inHead, outLen int
	var stateSave *wfunc.State
	if rollback {
		if qIn != nil {
			inHead = qIn.head
		}
		if qOut != nil {
			outLen = len(qOut.buf)
		}
		if rt.state != nil {
			stateSave = rt.state.Clone()
		}
	}
	restore := func() {
		if qIn != nil {
			qIn.head = inHead
		}
		if qOut != nil {
			qOut.buf = qOut.buf[:outLen]
		}
		if stateSave != nil {
			rt.state = stateSave.Clone()
			if c.runner != nil {
				c.runner.setState(rt.state)
			}
		}
	}
	attempt := func(fault faults.Fault, injected bool) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = asExecError(name, rt.fired, r)
			}
		}()
		if injected {
			switch fault.Kind {
			case faults.Panic:
				return &ExecError{Filter: name, Op: "injected panic", Iteration: rt.fired}
			case faults.Stall:
				st.set(stStalled, "", 0, -1)
				<-me.stopCh
				return errStopped
			}
		}
		wOut := c.tOut
		if injected && fault.Kind == faults.Corrupt {
			wOut = corruptOut(wOut)
		}
		if n.Filter.WorkFn != nil {
			n.Filter.WorkFn(c.tIn, wOut, rt.state)
			return nil
		}
		if err := c.runner.run(c.tIn, wOut, nil, nil); err != nil {
			return &ExecError{Filter: name, Op: "work", Iteration: rt.fired, Err: err}
		}
		return nil
	}
	fault, injected := me.sup.take(name, rt.fired)
	if injected {
		traceFault(me.rec, n.ID, name, fault.Kind.String())
	}
	err := attempt(fault, injected)
	if err == nil || err == errStopped {
		return err
	}
	switch pol.Action {
	case faults.Retry:
		for a := 1; a <= pol.Retries; a++ {
			me.sup.noteRetry(name)
			traceRecovery(me.rec, n.ID, name, "retry")
			if pol.Backoff > 0 {
				time.Sleep(time.Duration(a) * pol.Backoff)
			}
			restore()
			if err = attempt(faults.Fault{}, false); err == nil || err == errStopped {
				return err
			}
		}
		return fmt.Errorf("exec: %d retries exhausted: %w", pol.Retries, err)
	case faults.Skip:
		restore()
		me.sup.noteSkip(name)
		traceRecovery(me.rec, n.ID, name, "skip")
		skipFiring(n, c.tIn, c.tOut)
		return nil
	case faults.Restart:
		restore()
		stFresh, serr := freshState(n)
		if serr != nil {
			return serr
		}
		rt.state = stFresh
		if c.runner != nil {
			c.runner.setState(stFresh)
		}
		me.sup.noteRestart(name)
		traceRecovery(me.rec, n.ID, name, "restart")
		if err = attempt(faults.Fault{}, false); err != nil && err != errStopped {
			return fmt.Errorf("exec: restart did not recover: %w", err)
		}
		return err
	}
	return err
}

// WorkerOf reports the worker a node runs on (diagnostics).
func (me *MappedEngine) WorkerOf(id int) int { return me.Assign[id] }

// PartitionSizes returns per-worker node counts, sorted descending
// (diagnostics and tests).
func (me *MappedEngine) PartitionSizes() []int {
	sizes := make([]int, 0, me.Workers)
	for w := 0; w < me.Workers; w++ {
		if len(me.order[w]) > 0 {
			sizes = append(sizes, len(me.order[w]))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
