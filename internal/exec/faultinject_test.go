package exec

import (
	"errors"
	"strings"
	"testing"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

func mustPlan(t *testing.T, s string) *faults.Plan {
	t.Helper()
	p, err := faults.ParsePlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustPolicies(t *testing.T, s string) faults.Policies {
	t.Helper()
	p, err := faults.ParsePolicies(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// accFilter pushes running sums: out = s += in (stateful, so Restart is
// observable).
func accFilter(name string) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	s := b.Field("s", 0)
	b.WorkBody(wfunc.SetF(s, wfunc.AddX(s, wfunc.PopE())), wfunc.Push1(s))
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// faultPipeline builds ramp -> mid -> sink and returns graph, schedule and
// the captured output slice.
func faultPipeline(t *testing.T, mid *ir.Filter) (*ir.Graph, *sched.Schedule, *[]float64) {
	t.Helper()
	snk, got := SliceSink("snk")
	prog := &ir.Program{Name: "fi", Top: ir.Pipe("main", rampFilter("Src"), mid, snk)}
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, got
}

func runSeqFault(t *testing.T, mid *ir.Filter, iters int, opts Options) ([]float64, *Engine, error) {
	t.Helper()
	g, s, got := faultPipeline(t, mid)
	e, err := NewFromGraphOpts(g, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	err = e.Run(iters)
	return *got, e, err
}

// TestSequentialPanicFailPolicy: with no recovery policy an injected panic
// surfaces as a structured *ExecError naming filter, op, and firing.
func TestSequentialPanicFailPolicy(t *testing.T) {
	_, _, err := runSeqFault(t, gainFilter("Double", 2), 16,
		Options{Faults: mustPlan(t, "panic:Double@3")})
	if err == nil {
		t.Fatal("expected an error from the injected panic")
	}
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("error %v is not an *ExecError", err)
	}
	if faults.BaseName(ee.Filter) != "Double" || ee.Iteration != 3 {
		t.Fatalf("ExecError = %+v, want filter Double at firing 3", ee)
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Fatalf("error %q does not mention the injected panic", err)
	}
}

// TestSequentialStallFailPolicy: the single-threaded engine reports an
// injected stall synchronously (there is nothing else to make progress).
func TestSequentialStallFailPolicy(t *testing.T) {
	_, _, err := runSeqFault(t, gainFilter("Double", 2), 16,
		Options{Faults: mustPlan(t, "stall:Double@3")})
	if err == nil || !strings.Contains(err.Error(), "injected stall") {
		t.Fatalf("err = %v, want an injected-stall report", err)
	}
}

// TestSequentialRetryRecovers: Retry rolls the firing back and re-runs it;
// the one-shot fault is gone, so the output is bit-identical to a clean run.
func TestSequentialRetryRecovers(t *testing.T) {
	clean, _, err := runSeqFault(t, gainFilter("Double", 2), 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, e, err := runSeqFault(t, gainFilter("Double", 2), 16,
		Options{Faults: mustPlan(t, "panic:Double@5"), OnError: mustPolicies(t, "retry")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(clean) {
		t.Fatalf("got %d items, want %d", len(out), len(clean))
	}
	for i := range clean {
		if out[i] != clean[i] {
			t.Fatalf("out[%d] = %v, clean run has %v", i, out[i], clean[i])
		}
	}
	st := e.Degraded()["Double"]
	if st.Injected != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 injection and 1 retry", st)
	}
	if e.SupervisionReport() == "" {
		t.Fatal("expected a non-empty supervision report")
	}
}

// TestSequentialSkipEmitsZeros: Skip honors the static rates — the failed
// firing's input is consumed and its pushes are zeros.
func TestSequentialSkipEmitsZeros(t *testing.T) {
	clean, _, err := runSeqFault(t, gainFilter("Double", 2), 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, e, err := runSeqFault(t, gainFilter("Double", 2), 16,
		Options{Faults: mustPlan(t, "panic:Double@3"), OnError: mustPolicies(t, "Double=skip")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(clean) {
		t.Fatalf("got %d items, want %d (skip must preserve rates)", len(out), len(clean))
	}
	diff := -1
	for i := range clean {
		if out[i] != clean[i] {
			if diff >= 0 {
				t.Fatalf("more than one output differs (%d and %d)", diff, i)
			}
			diff = i
		}
	}
	if diff < 0 {
		t.Fatal("no output differs; the skip was not observable")
	}
	if out[diff] != 0 {
		t.Fatalf("skipped firing emitted %v, want 0", out[diff])
	}
	if st := e.Degraded()["Double"]; st.Skips != 1 {
		t.Fatalf("stats = %+v, want 1 skip", st)
	}
}

// TestSequentialRestartResetsState: Restart re-initializes the filter's
// state and re-runs the firing — the accumulator restarts from zero.
func TestSequentialRestartResetsState(t *testing.T) {
	out, e, err := runSeqFault(t, accFilter("Acc"), 16,
		Options{Faults: mustPlan(t, "panic:Acc@4"), OnError: mustPolicies(t, "Acc=restart")})
	if err != nil {
		t.Fatal(err)
	}
	// Ramp input 0,1,2,...; clean prefix sums are 0,1,3,6,10. After the
	// restart at firing 4 the sum restarts: out[4] = input[4] = 4.
	if len(out) < 6 {
		t.Fatalf("got only %d items", len(out))
	}
	if out[3] != 6 {
		t.Fatalf("out[3] = %v, want 6 (untouched prefix)", out[3])
	}
	if out[4] != 4 {
		t.Fatalf("out[4] = %v, want 4 (accumulator reset by restart)", out[4])
	}
	if st := e.Degraded()["Acc"]; st.Restarts != 1 {
		t.Fatalf("stats = %+v, want 1 restart", st)
	}
}

// TestSequentialCorruptSentinel: a Corrupt fault replaces the firing's
// pushes with the sentinel value and the run continues.
func TestSequentialCorruptSentinel(t *testing.T) {
	out, e, err := runSeqFault(t, gainFilter("Double", 2), 16,
		Options{Faults: mustPlan(t, "corrupt:Double@2")})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range out {
		if v == faults.CorruptValue {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt sentinel not in output %v", out)
	}
	if st := e.Degraded()["Double"]; st.Corrupted != 1 {
		t.Fatalf("stats = %+v, want 1 corruption", st)
	}
}

// TestRandomFaultsDeterministic: the same seed reproduces the same fault
// schedule and therefore the same degraded output, bit for bit.
func TestRandomFaultsDeterministic(t *testing.T) {
	run := func(seed string) ([]float64, map[string]DegradedStats) {
		out, e, err := runSeqFault(t, gainFilter("Double", 2), 32,
			Options{Faults: mustPlan(t, "rand:4@"+seed), OnError: mustPolicies(t, "skip")})
		if err != nil {
			t.Fatal(err)
		}
		return out, e.Degraded()
	}
	a, sa := run("42")
	b, sb := run("42")
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at item %d: %v vs %v", i, a[i], b[i])
		}
	}
	for k, v := range sa {
		if sb[k] != v {
			t.Fatalf("same seed produced different stats for %s: %+v vs %+v", k, v, sb[k])
		}
	}
}

// TestUnknownFaultFilterRejected: a plan naming a filter not in the graph
// fails at engine construction, not mid-run.
func TestUnknownFaultFilterRejected(t *testing.T) {
	g, s, _ := faultPipeline(t, gainFilter("Double", 2))
	if _, err := NewFromGraphOpts(g, s, Options{Faults: mustPlan(t, "panic:Nope@3")}); err == nil {
		t.Fatal("expected construction to reject the unknown filter")
	}
}

func runParFault(t *testing.T, mid *ir.Filter, iters int, opts Options) ([]float64, *ParallelEngine, error) {
	t.Helper()
	g, s, got := faultPipeline(t, mid)
	pe, err := NewParallelOpts(g, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	err = pe.Run(iters)
	return *got, pe, err
}

// TestParallelRetryRecovers: the goroutine-per-filter engine applies the
// same rollback semantics on its batch queues.
func TestParallelRetryRecovers(t *testing.T) {
	clean, _, err := runParFault(t, gainFilter("Double", 2), 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, pe, err := runParFault(t, gainFilter("Double", 2), 16,
		Options{Faults: mustPlan(t, "panic:Double@5"), OnError: mustPolicies(t, "retry")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(clean) {
		t.Fatalf("got %d items, want %d", len(out), len(clean))
	}
	for i := range clean {
		if out[i] != clean[i] {
			t.Fatalf("out[%d] = %v, clean run has %v", i, out[i], clean[i])
		}
	}
	if st := pe.Degraded()["Double"]; st.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 retry", st)
	}
}

// TestParallelSkipEmitsZeros: Skip on the parallel engine preserves batch
// sizes and substitutes zeros for the failed firing.
func TestParallelSkipEmitsZeros(t *testing.T) {
	clean, _, err := runParFault(t, gainFilter("Double", 2), 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, pe, err := runParFault(t, gainFilter("Double", 2), 16,
		Options{Faults: mustPlan(t, "panic:Double@3"), OnError: mustPolicies(t, "skip")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(clean) {
		t.Fatalf("got %d items, want %d", len(out), len(clean))
	}
	diff := -1
	for i := range clean {
		if out[i] != clean[i] {
			if diff >= 0 {
				t.Fatalf("more than one output differs (%d and %d)", diff, i)
			}
			diff = i
		}
	}
	if diff < 0 || out[diff] != 0 {
		t.Fatalf("want exactly one zero-substituted item, diff index %d, out %v", diff, out)
	}
	if st := pe.Degraded()["Double"]; st.Skips != 1 {
		t.Fatalf("stats = %+v, want 1 skip", st)
	}
}

// TestParallelPanicFailPolicy: without a policy, the parallel engine
// aborts the whole network and surfaces the structured error.
func TestParallelPanicFailPolicy(t *testing.T) {
	_, _, err := runParFault(t, gainFilter("Double", 2), 16,
		Options{Faults: mustPlan(t, "panic:Double@3")})
	var ee *ExecError
	if !errors.As(err, &ee) || faults.BaseName(ee.Filter) != "Double" {
		t.Fatalf("err = %v, want *ExecError for Double", err)
	}
}

// TestDynamicPanicFailPolicy: the dynamic engine surfaces injected panics
// as structured errors too.
func TestDynamicPanicFailPolicy(t *testing.T) {
	g, _, _ := faultPipeline(t, gainFilter("Double", 2))
	d, err := NewDynamicOpts(g, Options{Faults: mustPlan(t, "panic:Double@3")})
	if err != nil {
		t.Fatal(err)
	}
	err = d.Run(64)
	var ee *ExecError
	if !errors.As(err, &ee) || faults.BaseName(ee.Filter) != "Double" {
		t.Fatalf("err = %v, want *ExecError for Double", err)
	}
}

// TestDynamicCorruptSentinel: corruption injection works on live channels
// (no rollback needed).
func TestDynamicCorruptSentinel(t *testing.T) {
	g, _, got := faultPipeline(t, gainFilter("Double", 2))
	d, err := NewDynamicOpts(g, Options{Faults: mustPlan(t, "corrupt:Double@2")})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(32); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range *got {
		if v == faults.CorruptValue {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt sentinel not in output %v", *got)
	}
}

// TestDynamicRejectsRecoveryPolicies: pushes reach live channels, so
// rollback-based policies are a construction-time error.
func TestDynamicRejectsRecoveryPolicies(t *testing.T) {
	g, _, _ := faultPipeline(t, gainFilter("Double", 2))
	if _, err := NewDynamicOpts(g, Options{OnError: mustPolicies(t, "retry")}); err == nil {
		t.Fatal("expected the dynamic engine to reject recovery policies")
	}
}
