package exec

import (
	"fmt"
	"time"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/sched"
	"streamit/internal/sdep"
	"streamit/internal/wfunc"
)

// Engine executes a flattened stream graph sequentially.
type Engine struct {
	G   *ir.Graph
	Sch *sched.Schedule
	// Backend is the work-function execution substrate chosen at
	// construction (bytecode VM by default).
	Backend Backend

	calc  *sdep.Calc
	chans []*channel
	nodes []*nodeRT

	// pending teleport messages, keyed by receiver node ID.
	pending [][]*message
	// static latency constraints derived from Send statements and
	// MAX_LATENCY directives.
	constraints []constraint

	// Printer receives values from println statements; nil discards.
	Printer func(node string, v float64)

	// Firings counts total node firings (for throughput metrics).
	Firings int64
	// dynamic is set when messaging requires constraint-aware scheduling.
	dynamic bool
	// sup applies fault injection and recovery policies; nil when
	// unsupervised (the zero-overhead default).
	sup *supervisor

	// prof and rec are the observability hooks; nil when disabled (the
	// zero-overhead default). laneSched is the trace lane for steady
	// iterations; steadyIdx numbers them across RunSteady calls.
	prof      *obs.Profiler
	rec       *obs.Recorder
	laneSched int
	steadyIdx int64
}

// nodeRT is the per-node runtime state.
type nodeRT struct {
	node   *ir.Node
	state  *wfunc.State
	runner *workRunner
	send   *sender       // hoisted messenger (only for message-sending filters)
	print  func(float64) // hoisted print hook trampoline
	// override, when set, fires in place of the kernel's work function for
	// this engine instance only (see Engine.OverrideWork).
	override func(in, out wfunc.Tape)
	fired    int64
	// inT/outT are counting tape wrappers, set only when profiling.
	inT, outT wfunc.Tape
}

// message is an in-flight teleport message.
type message struct {
	handler    string
	args       []float64
	target     int64 // delivery threshold on the receiver's output tape
	upstream   bool  // receiver is upstream of sender
	bestEffort bool
}

// constraint bounds how far a receiver may run ahead of a potential sender
// (paper equations mc1/mc2).
type constraint struct {
	sender   *ir.Node
	receiver *ir.Node
	latency  int
	upstream bool // receiver upstream of sender
}

// New flattens, verifies, and prepares prog for execution on the default
// (VM) backend.
func New(prog *ir.Program) (*Engine, error) {
	return NewBackend(prog, BackendVM)
}

// NewBackend is New with an explicit work-function backend.
func NewBackend(prog *ir.Program, backend Backend) (*Engine, error) {
	g, err := ir.Flatten(prog)
	if err != nil {
		return nil, err
	}
	s, err := sched.Compute(g)
	if err != nil {
		return nil, err
	}
	return NewFromGraphBackend(g, s, backend)
}

// NewFromGraph prepares an engine for an already-flattened graph on the
// default (VM) backend.
func NewFromGraph(g *ir.Graph, s *sched.Schedule) (*Engine, error) {
	return NewFromGraphBackend(g, s, BackendVM)
}

// NewFromGraphBackend is NewFromGraph with an explicit work-function
// backend.
func NewFromGraphBackend(g *ir.Graph, s *sched.Schedule, backend Backend) (*Engine, error) {
	return NewFromGraphOpts(g, s, Options{Backend: backend})
}

// NewFromGraphOpts is the full-option engine constructor: backend
// selection plus supervised execution (fault injection and per-kernel
// recovery policies). It builds a one-shot Shared bundle; callers that
// construct many engines over the same graph should build the Shared once
// (exec.NewShared) and stamp engines from it.
func NewFromGraphOpts(g *ir.Graph, s *sched.Schedule, opts Options) (*Engine, error) {
	sh, err := NewShared(g, s, opts.Backend)
	if err != nil {
		return nil, err
	}
	return sh.NewEngine(opts)
}

// sdepCalc lazily builds the engine's sdep calculator. Only messaging
// constraints consult it, so the allocation (and its memo tables) is
// skipped entirely for the common message-free program.
func (e *Engine) sdepCalc() *sdep.Calc {
	if e.calc == nil {
		e.calc = sdep.NewCalc(e.G, e.Sch)
	}
	return e.calc
}

func collectSends(f *wfunc.Func) []*wfunc.Send {
	var out []*wfunc.Send
	var walk func(body []wfunc.Stmt)
	walk = func(body []wfunc.Stmt) {
		for _, s := range body {
			switch s := s.(type) {
			case *wfunc.Send:
				out = append(out, s)
			case *wfunc.If:
				walk(s.Then)
				walk(s.Else)
			case *wfunc.For:
				walk(s.Body)
			case *wfunc.While:
				walk(s.Body)
			}
		}
	}
	if f != nil {
		walk(f.Body)
	}
	return out
}

// progressTapeOf returns the tape that measures a node's execution progress
// for messaging purposes: its output tape, or — for sinks, which the paper's
// MAX_LATENCY example uses as endpoints — its input tape. Shared by the
// sequential engine and the pipelined mapped engine.
func progressTapeOf(n *ir.Node) (*ir.Edge, error) {
	if edge := n.OutEdge(); edge != nil {
		return edge, nil
	}
	if edge := n.InEdge(); edge != nil {
		return edge, nil
	}
	return nil, fmt.Errorf("%s has no tapes; it cannot be a messaging endpoint", n.Name)
}

// progressRateOf is the per-firing advance of the node's progress tape.
func progressRateOf(n *ir.Node) int64 {
	if n.OutEdge() != nil {
		return int64(n.TotalPush())
	}
	return int64(n.TotalPop())
}

// progress returns the node's position on its progress tape: n(O) for
// producers, items consumed for sinks.
func (e *Engine) progress(n *ir.Node) int64 {
	if edge := n.OutEdge(); edge != nil {
		return e.chans[edge.ID].pushed
	}
	if edge := n.InEdge(); edge != nil {
		return e.chans[edge.ID].popped
	}
	return 0
}

// sinkMargin is the peek-pop window margin of a sink node whose progress is
// measured on its input tape.
func sinkMargin(n *ir.Node) int64 {
	if n.Kind == ir.NodeFilter {
		k := n.Filter.Kernel
		return int64(k.Peek - k.Pop)
	}
	return 0
}

// miTapes computes mi{a->progress of bNode}(x). When a and b are the same
// edge, bNode is a sink consuming directly from a: x items of progress
// require x plus its peek margin to appear on the tape.
func (e *Engine) miTapes(a, b *ir.Edge, bNode *ir.Node, x int64) (int64, error) {
	if a == b {
		if x <= 0 {
			return 0, nil
		}
		return x + sinkMargin(bNode), nil
	}
	return e.sdepCalc().Mi(a, b, x)
}

// maTapes computes ma{a->progress of bNode}(x). When a and b are the same
// edge, bNode is a sink consuming directly from a: with x items on the tape
// it can consume floor((x-margin)/pop)*pop items.
func (e *Engine) maTapes(a, b *ir.Edge, bNode *ir.Node, x int64) (int64, error) {
	if a == b {
		pop := int64(bNode.TotalPop())
		m := sinkMargin(bNode)
		if x < m+pop || pop == 0 {
			return 0, nil
		}
		return (x - m) / pop * pop, nil
	}
	return e.sdepCalc().Ma(a, b, x)
}

// RunInit executes the initialization schedule.
func (e *Engine) RunInit() error {
	if e.dynamic {
		return e.runDynamic(e.Sch.InitReps, true)
	}
	return e.runEntries(e.Sch.Init)
}

// RunSteady executes the steady-state schedule iters times.
func (e *Engine) RunSteady(iters int) error {
	if e.dynamic {
		target := make([]int, len(e.G.Nodes))
		for i, r := range e.Sch.Reps {
			target[i] = iters * r
		}
		if e.rec == nil {
			return e.runDynamic(target, false)
		}
		// Constraint-aware scheduling interleaves iterations, so the trace
		// gets one slice covering the whole batch.
		t0 := e.rec.Stamp()
		err := e.runDynamic(target, false)
		e.rec.Slice(e.laneSched, fmt.Sprintf("steady x%d", iters), "iteration", t0, e.rec.Stamp())
		return err
	}
	for k := 0; k < iters; k++ {
		var t0 time.Duration
		if e.rec != nil {
			t0 = e.rec.Stamp()
		}
		if err := e.runEntries(e.Sch.Steady); err != nil {
			return err
		}
		if e.rec != nil {
			e.steadyIdx++
			e.rec.Slice(e.laneSched, fmt.Sprintf("steady %d", e.steadyIdx), "iteration", t0, e.rec.Stamp())
		}
	}
	return nil
}

// Run executes init plus iters steady-state iterations.
func (e *Engine) Run(iters int) error {
	if err := e.RunInit(); err != nil {
		return err
	}
	return e.RunSteady(iters)
}

func (e *Engine) runEntries(entries []sched.Entry) error {
	for _, en := range entries {
		for i := 0; i < en.Count; i++ {
			if err := e.fire(en.Node); err != nil {
				return err
			}
		}
	}
	return nil
}

// runDynamic fires nodes data-driven, respecting messaging constraints,
// until each node has fired extra[n] more times than at entry.
func (e *Engine) runDynamic(extra []int, isInit bool) error {
	order, err := e.G.TopoOrder()
	if err != nil {
		return err
	}
	target := make([]int64, len(e.G.Nodes))
	remaining := int64(0)
	for _, n := range e.G.Nodes {
		target[n.ID] = e.nodes[n.ID].fired + int64(extra[n.ID])
		remaining += int64(extra[n.ID])
	}
	for remaining > 0 {
		progress := int64(0)
		for _, n := range order {
			rt := e.nodes[n.ID]
			for rt.fired < target[n.ID] && e.canFire(n) {
				ok, err := e.constraintsAllow(n)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if err := e.fire(n); err != nil {
					return err
				}
				progress++
			}
		}
		if progress == 0 {
			phase := "steady-state"
			if isInit {
				phase = "initialization"
			}
			return fmt.Errorf("messaging constraints are unsatisfiable: no progress possible during %s", phase)
		}
		remaining -= progress
	}
	return nil
}

// canFire checks input availability for one firing of n.
func (e *Engine) canFire(n *ir.Node) bool {
	for p, edge := range n.In {
		if edge == nil {
			continue
		}
		if e.chans[edge.ID].Len() < n.PeekPort(p) {
			return false
		}
	}
	return true
}

// constraintsAllow checks equations mc1/mc2 for every constraint whose
// receiver is n: firing n must not advance its output tape beyond the point
// where a message from the (potential) sender could still be delivered.
func (e *Engine) constraintsAllow(n *ir.Node) (bool, error) {
	for _, c := range e.constraints {
		if c.receiver != n {
			continue
		}
		oB, err := progressTapeOf(c.receiver)
		if err != nil {
			return false, err
		}
		oA, err := progressTapeOf(c.sender)
		if err != nil {
			return false, err
		}
		pushA := progressRateOf(c.sender)
		nOB := e.progress(c.receiver)
		nOA := e.progress(c.sender)
		pushB := progressRateOf(n)
		if c.upstream {
			bound, err := e.miTapes(oB, oA, c.sender, nOA+pushA*int64(c.latency))
			if err != nil {
				return false, err
			}
			if nOB+pushB > bound {
				return false, nil
			}
		} else {
			bound, err := e.maTapes(oA, oB, c.receiver, nOA+pushA*int64(c.latency-1))
			if err != nil {
				return false, err
			}
			if nOB+pushB > bound {
				return false, nil
			}
		}
	}
	return true, nil
}

// fire executes one firing of n, delivering due messages per the paper's
// timing rules: downstream receivers get messages immediately before the
// firing that first sees the sender's effects; upstream receivers get them
// immediately after the firing that last affects the sender's data.
// Runtime panics (native-kernel bugs, buffer misuse) surface as structured
// *ExecError values naming the node, operation, and firing index.
func (e *Engine) fire(n *ir.Node) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = asExecError(n.Name, e.nodes[n.ID].fired, r)
		}
	}()
	return e.fireInner(n)
}

func (e *Engine) fireInner(n *ir.Node) error {
	if err := e.deliverDue(n, true); err != nil {
		return err
	}
	rt := e.nodes[n.ID]
	switch n.Kind {
	case ir.NodeFilter:
		if e.prof == nil && e.rec == nil {
			if err := e.fireFilter(rt); err != nil {
				return err
			}
		} else {
			start := time.Now()
			ferr := e.fireFilter(rt)
			d := time.Since(start)
			if e.prof != nil {
				e.prof.At(n.ID).AddWork(d)
			}
			if e.rec != nil {
				end := e.rec.Stamp()
				e.rec.Slice(n.ID, n.Name, "firing", end-d, end)
			}
			if ferr != nil {
				return ferr
			}
		}
	case ir.NodeSplitter:
		e.fireSplitter(n)
	case ir.NodeJoiner:
		e.fireJoiner(n)
	}
	rt.fired++
	e.Firings++
	if e.prof != nil {
		st := e.prof.At(n.ID)
		st.AddFiring()
		if n.Kind != ir.NodeFilter {
			profileSJ(st, n)
		}
	}
	return e.deliverDue(n, false)
}

func (e *Engine) fireFilter(rt *nodeRT) error {
	n := rt.node
	var inCh, outCh *channel
	if edge := n.InEdge(); edge != nil {
		inCh = e.chans[edge.ID]
	}
	if edge := n.OutEdge(); edge != nil {
		outCh = e.chans[edge.ID]
	}
	if e.sup != nil {
		return e.fireSupervised(rt, inCh, outCh)
	}
	return e.attemptFire(rt, inCh, outCh, faults.Fault{}, false)
}

// attemptFire executes one (possibly fault-afflicted) work invocation,
// converting panics and IL runtime errors into *ExecError.
func (e *Engine) attemptFire(rt *nodeRT, inCh, outCh *channel, fault faults.Fault, injected bool) (err error) {
	n := rt.node
	defer func() {
		if r := recover(); r != nil {
			err = asExecError(n.Name, rt.fired, r)
		}
	}()
	if injected {
		switch fault.Kind {
		case faults.Panic:
			return &ExecError{Filter: n.Name, Op: "injected panic", Iteration: rt.fired}
		case faults.Stall:
			// The sequential engine is single-threaded: blocking here would
			// hang with no watchdog to notice, so stalls report synchronously.
			return &ExecError{Filter: n.Name, Op: "injected stall", Iteration: rt.fired,
				Err: fmt.Errorf("sequential engine reports stalls synchronously")}
		}
	}
	var in, out wfunc.Tape
	if inCh != nil {
		in = inCh
		if rt.inT != nil {
			in = rt.inT
		}
	}
	if outCh != nil {
		out = outCh
		if rt.outT != nil {
			out = rt.outT
		}
	}
	if injected && fault.Kind == faults.Corrupt {
		out = corruptOut(out)
	}
	if rt.override != nil {
		rt.override(in, out)
		return nil
	}
	if n.Filter.WorkFn != nil {
		n.Filter.WorkFn(in, out, rt.state)
		return nil
	}
	var print func(float64)
	if e.Printer != nil {
		print = rt.print
	}
	var msg wfunc.Messenger
	if rt.send != nil {
		msg = rt.send
	}
	if err := rt.runner.run(in, out, msg, print); err != nil {
		return &ExecError{Filter: n.Name, Op: "work", Iteration: rt.fired, Err: err}
	}
	return nil
}

// fireSupervised wraps one filter firing in the fault injector and the
// filter's recovery policy. When the policy may need to roll the firing
// back (anything but Fail), the filter's tapes and state are saved first;
// recovery rewinds to that save point.
func (e *Engine) fireSupervised(rt *nodeRT, inCh, outCh *channel) error {
	n := rt.node
	pol := e.sup.pol.For(n.Name)
	rollback := pol.Action != faults.Fail
	var inSave, outSave *channel
	var stateSave *wfunc.State
	if rollback {
		if inCh != nil {
			inSave = inCh.clone()
		}
		if outCh != nil {
			outSave = outCh.clone()
		}
		if rt.state != nil {
			stateSave = rt.state.Clone()
		}
	}
	restore := func() {
		if inCh != nil {
			inCh.restoreFrom(inSave)
		}
		if outCh != nil {
			outCh.restoreFrom(outSave)
		}
		if stateSave != nil {
			rt.state = stateSave.Clone()
			if rt.runner != nil {
				rt.runner.setState(rt.state)
			}
		}
	}
	fault, injected := e.sup.take(n.Name, rt.fired)
	if injected {
		traceFault(e.rec, n.ID, n.Name, fault.Kind.String())
	}
	err := e.attemptFire(rt, inCh, outCh, fault, injected)
	if err == nil {
		return nil
	}
	switch pol.Action {
	case faults.Retry:
		for attempt := 1; attempt <= pol.Retries; attempt++ {
			e.sup.noteRetry(n.Name)
			traceRecovery(e.rec, n.ID, n.Name, "retry")
			if pol.Backoff > 0 {
				time.Sleep(time.Duration(attempt) * pol.Backoff)
			}
			restore()
			if err = e.attemptFire(rt, inCh, outCh, faults.Fault{}, false); err == nil {
				return nil
			}
		}
		return fmt.Errorf("exec: %d retries exhausted: %w", pol.Retries, err)
	case faults.Skip:
		restore()
		e.sup.noteSkip(n.Name)
		traceRecovery(e.rec, n.ID, n.Name, "skip")
		var in, out wfunc.Tape
		if inCh != nil {
			in = inCh
			if rt.inT != nil {
				in = rt.inT
			}
		}
		if outCh != nil {
			out = outCh
			if rt.outT != nil {
				out = rt.outT
			}
		}
		skipFiring(n, in, out)
		return nil
	case faults.Restart:
		restore()
		st, serr := freshState(n)
		if serr != nil {
			return serr
		}
		rt.state = st
		if rt.runner != nil {
			rt.runner.setState(st)
		}
		e.sup.noteRestart(n.Name)
		traceRecovery(e.rec, n.ID, n.Name, "restart")
		if err = e.attemptFire(rt, inCh, outCh, faults.Fault{}, false); err != nil {
			return fmt.Errorf("exec: restart did not recover: %w", err)
		}
		return nil
	}
	return err
}

// SupervisionReport renders per-filter recovery counters (empty when the
// engine is unsupervised or nothing degraded).
func (e *Engine) SupervisionReport() string { return e.sup.Report() }

// Degraded returns per-filter recovery counters (nil when unsupervised).
func (e *Engine) Degraded() map[string]DegradedStats {
	if e.sup == nil {
		return nil
	}
	return e.sup.Stats()
}

func (e *Engine) fireSplitter(n *ir.Node) {
	in := e.chans[n.InEdge().ID]
	if n.SJ.Kind == ir.SJDuplicate {
		v := in.Pop()
		for _, edge := range n.Out {
			if edge != nil {
				e.chans[edge.ID].Push(v)
			}
		}
		return
	}
	for p, edge := range n.Out {
		w := n.SJ.Weights[p]
		for k := 0; k < w; k++ {
			v := in.Pop()
			if edge != nil {
				e.chans[edge.ID].Push(v)
			}
		}
	}
}

func (e *Engine) fireJoiner(n *ir.Node) {
	out := e.chans[n.OutEdge().ID]
	for p, edge := range n.In {
		w := n.SJ.Weights[p]
		for k := 0; k < w; k++ {
			out.Push(e.chans[edge.ID].Pop())
		}
	}
}

// ChannelLen returns the buffered item count on an edge (for tests).
func (e *Engine) ChannelLen(edge *ir.Edge) int { return e.chans[edge.ID].Len() }

// ChannelItems returns the buffered items on an edge in order, without
// consuming them (for tests, notably the backend crosscheck).
func (e *Engine) ChannelItems(edge *ir.Edge) []float64 {
	ch := e.chans[edge.ID]
	out := make([]float64, ch.Len())
	for i := range out {
		out[i] = ch.Peek(i)
	}
	return out
}

// FiredCount returns the number of firings of a node so far.
func (e *Engine) FiredCount(n *ir.Node) int64 { return e.nodes[n.ID].fired }

// State returns the mutable kernel state of a filter (for tests and
// examples that inspect fields).
func (e *Engine) State(f *ir.Filter) *wfunc.State {
	n := e.G.FilterNode[f]
	if n == nil {
		return nil
	}
	return e.nodes[n.ID].state
}

// Snapshot captures the engine's complete execution state — channel
// contents, filter fields, firing counters, and pending messages — so a
// speculative execution can later be rolled back. This is the paper's
// envisioned sdep application: a software speculation system rolls back
// the appropriate actor executions after a failed prediction.
type Snapshot struct {
	chans   []*channel
	states  []*wfunc.State
	fired   []int64
	firings int64
	pending [][]*message
}

// Snapshot captures the current state.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		chans:   make([]*channel, len(e.chans)),
		states:  make([]*wfunc.State, len(e.nodes)),
		fired:   make([]int64, len(e.nodes)),
		firings: e.Firings,
		pending: make([][]*message, len(e.pending)),
	}
	for i, ch := range e.chans {
		cp := *ch
		cp.buf = append([]float64(nil), ch.buf...)
		s.chans[i] = &cp
	}
	for i, rt := range e.nodes {
		if rt.state != nil {
			s.states[i] = rt.state.Clone()
		}
		s.fired[i] = rt.fired
	}
	for i, msgs := range e.pending {
		for _, m := range msgs {
			cp := *m
			s.pending[i] = append(s.pending[i], &cp)
		}
	}
	return s
}

// Restore rolls the engine back to a snapshot taken earlier on the same
// engine.
func (e *Engine) Restore(s *Snapshot) {
	for i, ch := range s.chans {
		cp := *ch
		cp.buf = append([]float64(nil), ch.buf...)
		e.chans[i] = &cp
	}
	for i, rt := range e.nodes {
		if s.states[i] != nil {
			rt.state = s.states[i].Clone()
			if rt.runner != nil {
				rt.runner.setState(rt.state)
			}
		}
		rt.fired = s.fired[i]
	}
	e.Firings = s.firings
	for i := range e.pending {
		e.pending[i] = nil
		for _, m := range s.pending[i] {
			cp := *m
			e.pending[i] = append(e.pending[i], &cp)
		}
	}
}
