package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/wfunc"
)

// Options configure engine construction across all three engines: the
// work-function backend, an optional fault-injection plan, per-kernel
// recovery policies, and the watchdog interval for the concurrent engines.
type Options struct {
	// Backend selects the work-function substrate (zero value: bytecode VM).
	Backend Backend
	// Faults schedules deterministic fault injection (nil: none).
	Faults *faults.Plan
	// OnError maps filters to recovery policies (zero value: fail).
	OnError faults.Policies
	// Watchdog is the stall-detection interval of the parallel and dynamic
	// engines: if no item or batch moves anywhere for this long, the run
	// aborts with a *DeadlockError describing the blocked wait-cycle.
	// 0 selects DefaultWatchdogInterval; negative disables the watchdog.
	// The sequential engine is single-threaded and has no watchdog.
	Watchdog time.Duration
	// QueueDepth bounds the mapped engine's cross-worker channels, in
	// batches. 0 selects DefaultQueueDepth; the other engines ignore it.
	QueueDepth int
	// CheckpointEvery makes the mapped engine snapshot a coordinated
	// checkpoint image every N steady iterations (the rollback target for
	// worker-crash recovery). 0 checkpoints only when a worker fault is
	// scheduled; the other engines ignore it.
	CheckpointEvery int
	// Stages enables coarse-grained software pipelining on the mapped
	// engine: Stages[n.ID] is the node's pipeline stage level (typically
	// partition.PipelineStages over the plan's rewritten graph). Workers
	// skew by stage — a producer runs macro-cycle i while its consumer
	// still runs i-StageBatch — with cross-worker transfers batched every
	// StageBatch cycles. nil keeps the classic lockstep iteration
	// schedule; the other engines ignore it.
	Stages []int
	// StageClusters lists node groups (by node ID) that must fire
	// together at firing granularity under pipelining — feedback loops
	// and teleport-messaging hulls. Each group must sit on one worker at
	// one stage level. Only meaningful with Stages.
	StageClusters [][]int
	// StageBatch is the pipelined cross-worker flush interval in
	// macro-cycles (and the stage distance between adjacent levels).
	// 0 selects DefaultStageBatch. Only meaningful with Stages.
	StageBatch int
	// Elastic enables the mapped engine's runtime re-plan controller: the
	// profiler's windowed per-worker busy time feeds an imbalance detector
	// that, when it trips (or when Resize asks for a different worker
	// count), quiesces at the next coordinated-checkpoint barrier,
	// re-packs the same elaborated graph from the live measured work, and
	// resumes from the in-memory image — no restart, bit-identical output.
	// Forces Profile on; the other engines ignore it.
	Elastic bool
	// ElasticWindow is the observation window between imbalance checks, in
	// steady iterations (macro-cycles on pipelined plans). 0 selects
	// DefaultElasticWindow. Only meaningful with Elastic.
	ElasticWindow int
	// ElasticThreshold trips a re-plan when the busiest worker's windowed
	// work exceeds the worker mean by this factor. 0 selects
	// DefaultElasticThreshold; must exceed 1 otherwise. Only meaningful
	// with Elastic.
	ElasticThreshold float64
	// ResizeAt/ResizeTo schedule a one-shot elastic resize: at the first
	// checkpoint barrier at or past steady iteration (pipelined:
	// macro-cycle) ResizeAt, the engine re-plans onto ResizeTo workers.
	// Zero values disable it. Only meaningful with Elastic.
	ResizeAt int64
	ResizeTo int
	// Profile enables the per-filter profiler (internal/obs): firings,
	// tape traffic, work/stall time, and buffer high-water marks,
	// retrievable via the engine's Profile method.
	Profile bool
	// Trace attaches a trace recorder (internal/obs): firings, steady
	// iterations, teleport deliveries, and fault/recovery events stream
	// into it as Chrome trace_event records.
	Trace *obs.Recorder
	// LocalWorkers turns the mapped engine into one shard of a
	// distributed run: LocalWorkers[w] marks the workers this process
	// actually executes, the rest belong to peer shards. Edges crossing
	// the local/remote boundary move their batches through Remote instead
	// of in-memory channels. nil (the default) runs every worker locally;
	// the other engines ignore it. Requires a lockstep plan (no Stages).
	LocalWorkers []bool
	// Remote supplies the cross-shard edge transport for a sharded mapped
	// engine (internal/dist wires these to TCP links). Required when
	// LocalWorkers leaves any cross-boundary edge.
	Remote *RemoteHooks
}

// DefaultWatchdogInterval is the no-progress window after which the
// parallel and dynamic engines declare deadlock. Generous enough that only
// a genuine wedge (never a slow kernel making progress) trips it.
const DefaultWatchdogInterval = 5 * time.Second

// watchdogInterval resolves the option value.
func (o Options) watchdogInterval() time.Duration {
	if o.Watchdog == 0 {
		return DefaultWatchdogInterval
	}
	return o.Watchdog
}

// supervised reports whether the options ask for any supervision work.
func (o Options) supervised() bool {
	return !o.Faults.Empty() || o.OnError.Active()
}

// filterNames lists the graph's filter-node names in deterministic graph
// order (the order fault plans materialize against).
func filterNames(g *ir.Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		if n.Kind == ir.NodeFilter {
			out = append(out, n.Name)
		}
	}
	return out
}

// DegradedStats counts the recovery actions taken for one filter (or, for
// the mapped engine's worker-level faults, one worker).
type DegradedStats struct {
	Injected  int64 // faults the injector delivered
	Retries   int64 // rolled-back re-executions
	Skips     int64 // firings replaced by rate-honoring zeros
	Restarts  int64 // state resets
	Corrupted int64 // firings whose pushes were replaced by the corrupt sentinel
	Crashes   int64 // worker crashes recovered by replan + rollback
	Slowed    int64 // injected worker slowdowns
}

// supervisor applies fault injection and recovery policies to filter
// firings. One instance is shared by all node contexts of an engine; it is
// concurrency-safe for the parallel and dynamic engines.
type supervisor struct {
	inj *faults.Injector
	pol faults.Policies

	mu           sync.Mutex
	stats        map[string]*DegradedStats
	workerFaults map[int][]faults.WorkerFault // per worker, sorted by Iter
}

// newSupervisor materializes the options against a graph. Returns nil when
// no supervision is requested, so engines keep their zero-cost fast path.
func newSupervisor(g *ir.Graph, o Options) (*supervisor, error) {
	if !o.supervised() {
		return nil, nil
	}
	inj, err := faults.NewInjector(o.Faults, filterNames(g))
	if err != nil {
		return nil, err
	}
	s := &supervisor{inj: inj, pol: o.OnError, stats: map[string]*DegradedStats{}}
	if o.Faults != nil && len(o.Faults.WorkerFaults) > 0 {
		s.workerFaults = map[int][]faults.WorkerFault{}
		for _, wf := range o.Faults.WorkerFaults {
			s.workerFaults[wf.Worker] = append(s.workerFaults[wf.Worker], wf)
		}
		for _, fs := range s.workerFaults {
			sort.Slice(fs, func(i, j int) bool { return fs[i].Iter < fs[j].Iter })
		}
	}
	return s, nil
}

// hasWorkerFaults reports whether any worker-level faults are scheduled
// (consumed or not) — the signal that the mapped engine must checkpoint.
func (s *supervisor) hasWorkerFaults() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.workerFaults) > 0
}

// takeWorker consumes the first worker fault due at or before the given
// steady iteration. One-shot: a consumed fault never re-fires, so a crash
// rolled back to a checkpoint before its iteration does not crash again.
func (s *supervisor) takeWorker(worker int, iter int64) (faults.WorkerFault, bool) {
	if s == nil {
		return faults.WorkerFault{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fs := s.workerFaults[worker]
	if len(fs) == 0 || fs[0].Iter > iter {
		return faults.WorkerFault{}, false
	}
	f := fs[0]
	s.workerFaults[worker] = fs[1:]
	s.statFor(fmt.Sprintf("worker%d", worker)).Injected++
	return f, true
}

// statFor aggregates counters under the source-level filter name (all
// flattened instances of one filter share a row in the report).
func (s *supervisor) statFor(filter string) *DegradedStats {
	base := faults.BaseName(filter)
	st := s.stats[base]
	if st == nil {
		st = &DegradedStats{}
		s.stats[base] = st
	}
	return st
}

// take consults the injector for a fault due at this firing, recording it.
func (s *supervisor) take(filter string, firing int64) (faults.Fault, bool) {
	f, ok := s.inj.Next(filter, firing)
	if ok {
		s.mu.Lock()
		s.statFor(filter).Injected++
		if f.Kind == faults.Corrupt {
			s.statFor(filter).Corrupted++
		}
		s.mu.Unlock()
	}
	return f, ok
}

func (s *supervisor) noteRetry(filter string) {
	s.mu.Lock()
	s.statFor(filter).Retries++
	s.mu.Unlock()
}
func (s *supervisor) noteSkip(filter string) { s.mu.Lock(); s.statFor(filter).Skips++; s.mu.Unlock() }
func (s *supervisor) noteRestart(filter string) {
	s.mu.Lock()
	s.statFor(filter).Restarts++
	s.mu.Unlock()
}
func (s *supervisor) noteCrash(worker string) {
	s.mu.Lock()
	s.statFor(worker).Crashes++
	s.mu.Unlock()
}
func (s *supervisor) noteSlow(worker string) {
	s.mu.Lock()
	s.statFor(worker).Slowed++
	s.mu.Unlock()
}

// Stats returns a copy of the per-filter recovery counters.
func (s *supervisor) Stats() map[string]DegradedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]DegradedStats, len(s.stats))
	for k, v := range s.stats {
		out[k] = *v
	}
	return out
}

// Report renders the recovery counters for CLI output; empty when nothing
// degraded.
func (s *supervisor) Report() string {
	if s == nil {
		return ""
	}
	stats := s.Stats()
	var names []string
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		st := stats[n]
		if st == (DegradedStats{}) {
			continue
		}
		fmt.Fprintf(&b, "  %-24s injected=%d retries=%d skips=%d restarts=%d corrupted=%d crashes=%d slowed=%d\n",
			n, st.Injected, st.Retries, st.Skips, st.Restarts, st.Corrupted, st.Crashes, st.Slowed)
	}
	return b.String()
}

// corruptTape passes reads through but replaces every pushed value with
// the corruption sentinel — the tape-level realization of a Corrupt fault.
type corruptTape struct {
	inner wfunc.Tape
}

func (t corruptTape) Peek(i int) float64 { return t.inner.Peek(i) }
func (t corruptTape) Pop() float64       { return t.inner.Pop() }
func (t corruptTape) Push(float64)       { t.inner.Push(faults.CorruptValue) }

// corruptOut wraps out (which may be nil for sinks) for one firing.
func corruptOut(out wfunc.Tape) wfunc.Tape {
	if out == nil {
		return nil
	}
	return corruptTape{inner: out}
}

// skipFiring honors a filter's static rates without running its kernel:
// pop-rate items are consumed and discarded, push-rate zeros emitted.
func skipFiring(n *ir.Node, in, out wfunc.Tape) {
	for i := 0; i < n.TotalPop(); i++ {
		in.Pop()
	}
	for i := 0; i < n.TotalPush(); i++ {
		out.Push(0)
	}
}

// freshState re-creates a filter's initial state (fields re-initialized,
// init function re-run) for the Restart policy.
func freshState(n *ir.Node) (*wfunc.State, error) {
	k := n.Filter.Kernel
	st := k.NewState()
	if k.Init != nil {
		env := wfunc.NewEnv(k.Init)
		env.State = st
		if err := wfunc.Exec(k.Init, env); err != nil {
			return nil, fmt.Errorf("restart init of %s: %w", n.Name, err)
		}
	}
	return st, nil
}
