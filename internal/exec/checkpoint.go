package exec

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// Checkpoint format: a self-describing binary image of an engine's
// complete execution state, written at an iteration boundary and restored
// into a freshly constructed engine over the same program. The image holds
// only semantic state — tape contents and counters, filter fields, firing
// counts, pending teleport messages — never backend artifacts or worker
// topology, so a checkpoint taken under the VM restores under the
// interpreter and vice versa, and a mapped-engine image taken over a
// rewritten graph restores into any engine over that same graph,
// bit-identically.
//
// Layout (little-endian):
//
//	magic "STRMCKPT" | u32 version | u64 graph fingerprint
//	i64 iteration | i64 firings
//	u32 node count | per node: i64 fired, u8 hasState,
//	    [u32 scalar count, f64...; u32 array count, per array u32 len, f64...]
//	u32 edge count | per edge: i64 pushed, i64 popped, u32 len, f64 items...
//	per node: u32 message count, per message:
//	    u32 handler len, bytes, u32 arg count, f64 args...,
//	    i64 target, u8 upstream, u8 bestEffort
//	optional trailer, only for mid-segment software-pipelined barriers:
//	    magic "SWPS" | i64 base | i64 segIters | i64 cycles |
//	    u32 batch | u32 level count, u32 levels...
//
// Every count is validated against the remaining data before allocation,
// and shapes are re-validated against the engine's graph at apply time, so
// corrupt or truncated images produce errors, never panics or huge
// allocations.
//
// Images without the SWPS trailer are uniform: every node sits at the same
// logical iteration, and any engine over the fingerprinted graph can
// restore them. The trailer marks a stage-skewed pipelined barrier — nodes
// at stage s have run `cycles - s` macro-cycles of a segment of segIters
// iterations started at logical iteration base — which only a mapped
// engine running the same stage schedule can resume.
const (
	checkpointMagic   = "STRMCKPT"
	checkpointVersion = 1
	swpMagic          = "SWPS"
)

// graphFingerprint hashes a graph and schedule structure (FNV-1a). A
// checkpoint only restores into an engine whose fingerprint matches, which
// catches restoring against a different program, different flattening,
// different mapped rewrite, or different schedule.
func graphFingerprint(g *ir.Graph, s *sched.Schedule) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	ws := func(s string) {
		wi(int64(len(s)))
		io.WriteString(h, s)
	}
	wi(int64(len(g.Nodes)))
	for _, n := range g.Nodes {
		ws(n.Name)
		wi(int64(n.Kind))
		wi(int64(len(n.In)))
		wi(int64(len(n.Out)))
		for _, w := range n.SJ.Weights {
			wi(int64(w))
		}
		wi(int64(s.Reps[n.ID]))
	}
	wi(int64(len(g.Edges)))
	for _, edge := range g.Edges {
		wi(int64(edge.Src.ID))
		wi(int64(edge.SrcPort))
		wi(int64(edge.Dst.ID))
		wi(int64(edge.DstPort))
	}
	return h.Sum64()
}

// Fingerprint hashes the engine's graph and schedule structure.
func (e *Engine) Fingerprint() uint64 { return graphFingerprint(e.G, e.Sch) }

// GraphFingerprint hashes a graph and schedule structure — the identity
// under which checkpoints restore, compiled-program caches key, and the
// streaming server names program versions.
func GraphFingerprint(g *ir.Graph, s *sched.Schedule) uint64 { return graphFingerprint(g, s) }

// ckptImage is the engine-neutral decoded form of a checkpoint: what any
// engine over the fingerprinted graph needs to resume.
type ckptImage struct {
	iteration int64
	firings   int64
	nodes     []ckptNode
	edges     []ckptEdge
	pending   [][]*message // per node; empty for engines without messaging
	swp       *ckptSWP     // stage-skew trailer; nil for uniform images
}

// ckptSWP records a software-pipelined barrier's position in its segment
// plus the stage schedule it was taken under (validated on restore).
type ckptSWP struct {
	base     int64 // logical iterations completed before this segment
	segIters int64 // logical iterations this segment runs
	cycles   int64 // macro-cycles completed within the segment
	batch    int   // flush interval / stage distance in cycles
	levels   []int // per-node stage levels
}

type ckptNode struct {
	fired int64
	state *wfunc.State // nil for stateless nodes
}

type ckptEdge struct {
	pushed, popped int64
	items          []float64
}

// ckptWriter accumulates the image, latching the first write error.
type ckptWriter struct {
	w   io.Writer
	err error
}

func (c *ckptWriter) bytes(b []byte) {
	if c.err == nil {
		_, c.err = c.w.Write(b)
	}
}

func (c *ckptWriter) u8(v byte) { c.bytes([]byte{v}) }

func (c *ckptWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.bytes(b[:])
}

func (c *ckptWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.bytes(b[:])
}

func (c *ckptWriter) i64(v int64)   { c.u64(uint64(v)) }
func (c *ckptWriter) f64(v float64) { c.u64(math.Float64bits(v)) }

func (c *ckptWriter) floats(vs []float64) {
	c.u32(uint32(len(vs)))
	for _, v := range vs {
		c.f64(v)
	}
}

func (c *ckptWriter) str(s string) {
	c.u32(uint32(len(s)))
	c.bytes([]byte(s))
}

// writeImage serializes an image under the given graph fingerprint.
func writeImage(w io.Writer, fp uint64, img *ckptImage) error {
	c := &ckptWriter{w: w}
	c.bytes([]byte(checkpointMagic))
	c.u32(checkpointVersion)
	c.u64(fp)
	c.i64(img.iteration)
	c.i64(img.firings)
	c.u32(uint32(len(img.nodes)))
	for _, n := range img.nodes {
		c.i64(n.fired)
		if n.state == nil {
			c.u8(0)
			continue
		}
		c.u8(1)
		c.floats(n.state.Scalars)
		c.u32(uint32(len(n.state.Arrays)))
		for _, a := range n.state.Arrays {
			c.floats(a)
		}
	}
	c.u32(uint32(len(img.edges)))
	for _, e := range img.edges {
		c.i64(e.pushed)
		c.i64(e.popped)
		c.floats(e.items)
	}
	for _, msgs := range img.pending {
		c.u32(uint32(len(msgs)))
		for _, m := range msgs {
			c.str(m.handler)
			c.floats(m.args)
			c.i64(m.target)
			b := byte(0)
			if m.upstream {
				b = 1
			}
			c.u8(b)
			b = 0
			if m.bestEffort {
				b = 1
			}
			c.u8(b)
		}
	}
	if sw := img.swp; sw != nil {
		c.bytes([]byte(swpMagic))
		c.i64(sw.base)
		c.i64(sw.segIters)
		c.i64(sw.cycles)
		c.u32(uint32(sw.batch))
		c.u32(uint32(len(sw.levels)))
		for _, lv := range sw.levels {
			c.u32(uint32(lv))
		}
	}
	return c.err
}

// ckptReader consumes the image with hard bounds checks: every read
// validates the remaining length first, so malformed input fails cleanly.
type ckptReader struct {
	data []byte
	off  int
}

func (c *ckptReader) remaining() int { return len(c.data) - c.off }

func (c *ckptReader) take(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, fmt.Errorf("exec: checkpoint truncated at offset %d (want %d more bytes, have %d)", c.off, n, c.remaining())
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *ckptReader) u8() (byte, error) {
	b, err := c.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *ckptReader) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *ckptReader) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *ckptReader) i64() (int64, error) {
	v, err := c.u64()
	return int64(v), err
}

func (c *ckptReader) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

// count reads a u32 length and checks it against the bytes that must
// follow (per-element size), so a corrupt length cannot trigger a huge
// allocation.
func (c *ckptReader) count(elemSize int, what string) (int, error) {
	v, err := c.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n*elemSize > c.remaining() {
		return 0, fmt.Errorf("exec: checkpoint %s count %d exceeds remaining data", what, n)
	}
	return n, nil
}

func (c *ckptReader) floats(what string) ([]float64, error) {
	n, err := c.count(8, what)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = c.f64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readImage decodes and validates a checkpoint against the expected graph
// fingerprint. Structural invariants (edge counters vs. buffered items,
// flag ranges, no trailing bytes) are enforced here; graph-shape checks
// (node/edge counts, state field sizes) happen when an engine applies the
// image, since only the engine knows its graph.
func readImage(data []byte, wantFP uint64) (*ckptImage, error) {
	c := &ckptReader{data: data}
	magic, err := c.take(len(checkpointMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("exec: not a checkpoint image (bad magic)")
	}
	version, err := c.u32()
	if err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("exec: checkpoint version %d not supported (want %d)", version, checkpointVersion)
	}
	fp, err := c.u64()
	if err != nil {
		return nil, err
	}
	if fp != wantFP {
		return nil, fmt.Errorf("exec: checkpoint fingerprint %016x does not match this program (%016x); was it taken from a different graph or schedule?", fp, wantFP)
	}
	img := &ckptImage{}
	if img.iteration, err = c.i64(); err != nil {
		return nil, err
	}
	if img.firings, err = c.i64(); err != nil {
		return nil, err
	}
	numNodes, err := c.count(9, "node") // i64 fired + u8 hasState minimum
	if err != nil {
		return nil, err
	}
	img.nodes = make([]ckptNode, numNodes)
	for i := range img.nodes {
		n := &img.nodes[i]
		if n.fired, err = c.i64(); err != nil {
			return nil, err
		}
		hasState, err := c.u8()
		if err != nil {
			return nil, err
		}
		if hasState > 1 {
			return nil, fmt.Errorf("exec: checkpoint state flag %d out of range on node %d", hasState, i)
		}
		if hasState == 0 {
			continue
		}
		scalars, err := c.floats("scalar")
		if err != nil {
			return nil, err
		}
		numArrays, err := c.count(4, "array")
		if err != nil {
			return nil, err
		}
		arrays := make([][]float64, numArrays)
		for k := range arrays {
			if arrays[k], err = c.floats("array data"); err != nil {
				return nil, err
			}
		}
		n.state = &wfunc.State{Scalars: scalars, Arrays: arrays}
	}
	numEdges, err := c.count(20, "edge") // i64+i64+u32 minimum
	if err != nil {
		return nil, err
	}
	img.edges = make([]ckptEdge, numEdges)
	for i := range img.edges {
		e := &img.edges[i]
		if e.pushed, err = c.i64(); err != nil {
			return nil, err
		}
		if e.popped, err = c.i64(); err != nil {
			return nil, err
		}
		if e.items, err = c.floats("channel item"); err != nil {
			return nil, err
		}
		if e.pushed-e.popped != int64(len(e.items)) {
			return nil, fmt.Errorf("exec: checkpoint edge %d counters (pushed %d, popped %d) disagree with %d buffered items", i, e.pushed, e.popped, len(e.items))
		}
	}
	img.pending = make([][]*message, numNodes)
	for i := range img.pending {
		numMsgs, err := c.count(1, "message")
		if err != nil {
			return nil, err
		}
		for k := 0; k < numMsgs; k++ {
			nameLen, err := c.count(1, "handler name")
			if err != nil {
				return nil, err
			}
			name, err := c.take(nameLen)
			if err != nil {
				return nil, err
			}
			args, err := c.floats("message arg")
			if err != nil {
				return nil, err
			}
			target, err := c.i64()
			if err != nil {
				return nil, err
			}
			up, err := c.u8()
			if err != nil {
				return nil, err
			}
			be, err := c.u8()
			if err != nil {
				return nil, err
			}
			if up > 1 || be > 1 {
				return nil, fmt.Errorf("exec: checkpoint message flags out of range")
			}
			img.pending[i] = append(img.pending[i], &message{
				handler: string(name), args: args, target: target,
				upstream: up == 1, bestEffort: be == 1,
			})
		}
	}
	if c.remaining() > 0 {
		magic, err := c.take(len(swpMagic))
		if err != nil {
			return nil, err
		}
		if string(magic) != swpMagic {
			return nil, fmt.Errorf("exec: %d trailing bytes after checkpoint image", c.remaining()+len(swpMagic))
		}
		sw := &ckptSWP{}
		if sw.base, err = c.i64(); err != nil {
			return nil, err
		}
		if sw.segIters, err = c.i64(); err != nil {
			return nil, err
		}
		if sw.cycles, err = c.i64(); err != nil {
			return nil, err
		}
		batch, err := c.u32()
		if err != nil {
			return nil, err
		}
		sw.batch = int(batch)
		numLevels, err := c.count(4, "stage level")
		if err != nil {
			return nil, err
		}
		if numLevels != int(numNodes) {
			return nil, fmt.Errorf("exec: checkpoint stage trailer has %d levels for %d nodes", numLevels, numNodes)
		}
		sw.levels = make([]int, numLevels)
		maxLevel := 0
		for i := range sw.levels {
			lv, err := c.u32()
			if err != nil {
				return nil, err
			}
			sw.levels[i] = int(lv)
			if int(lv) > maxLevel {
				maxLevel = int(lv)
			}
		}
		if sw.batch < 1 || sw.base < 0 || sw.segIters < 1 || sw.cycles < 1 ||
			sw.cycles >= sw.segIters+int64(maxLevel)*int64(sw.batch) {
			return nil, fmt.Errorf("exec: checkpoint stage trailer out of range (base %d, segment %d, cycle %d, batch %d)",
				sw.base, sw.segIters, sw.cycles, sw.batch)
		}
		img.swp = sw
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("exec: %d trailing bytes after checkpoint image", c.remaining())
	}
	return img, nil
}

// WriteCheckpoint serializes the engine's execution state. iteration is
// the caller's steady-state position (how many iterations have run), so a
// resuming process knows how many remain.
func (e *Engine) WriteCheckpoint(w io.Writer, iteration int64) error {
	img := &ckptImage{
		iteration: iteration,
		firings:   e.Firings,
		nodes:     make([]ckptNode, len(e.nodes)),
		edges:     make([]ckptEdge, len(e.chans)),
		pending:   e.pending,
	}
	for i, rt := range e.nodes {
		img.nodes[i] = ckptNode{fired: rt.fired, state: rt.state}
	}
	for i, ch := range e.chans {
		items := make([]float64, ch.Len())
		for k := range items {
			items[k] = ch.Peek(k)
		}
		img.edges[i] = ckptEdge{pushed: ch.pushed, popped: ch.popped, items: items}
	}
	return writeImage(w, e.Fingerprint(), img)
}

// RestoreCheckpoint loads a checkpoint image into an engine constructed
// over the same program and schedule, replacing its entire execution
// state. It returns the iteration recorded at checkpoint time. The engine
// must be freshly constructed or otherwise disposable: on error the
// engine's state is unspecified and it must not be run.
func (e *Engine) RestoreCheckpoint(data []byte) (int64, error) {
	img, err := readImage(data, e.Fingerprint())
	if err != nil {
		return 0, err
	}
	if img.swp != nil {
		return 0, fmt.Errorf("exec: checkpoint is a stage-skewed software-pipelining barrier; only a pipelined mapped engine can resume it")
	}
	if len(img.nodes) != len(e.nodes) {
		return 0, fmt.Errorf("exec: checkpoint has %d nodes, engine has %d", len(img.nodes), len(e.nodes))
	}
	if len(img.edges) != len(e.chans) {
		return 0, fmt.Errorf("exec: checkpoint has %d edges, engine has %d", len(img.edges), len(e.chans))
	}
	for i, rt := range e.nodes {
		in := img.nodes[i]
		rt.fired = in.fired
		if (in.state != nil) != (rt.state != nil) {
			return 0, fmt.Errorf("exec: checkpoint state presence mismatch on node %s", rt.node.Name)
		}
		if in.state == nil {
			continue
		}
		if len(in.state.Scalars) != len(rt.state.Scalars) {
			return 0, fmt.Errorf("exec: node %s has %d scalar fields, checkpoint has %d", rt.node.Name, len(rt.state.Scalars), len(in.state.Scalars))
		}
		if len(in.state.Arrays) != len(rt.state.Arrays) {
			return 0, fmt.Errorf("exec: node %s has %d array fields, checkpoint has %d", rt.node.Name, len(rt.state.Arrays), len(in.state.Arrays))
		}
		for k := range in.state.Arrays {
			if len(in.state.Arrays[k]) != len(rt.state.Arrays[k]) {
				return 0, fmt.Errorf("exec: node %s array field %d has size %d, checkpoint has %d", rt.node.Name, k, len(rt.state.Arrays[k]), len(in.state.Arrays[k]))
			}
		}
		rt.state.Scalars = in.state.Scalars
		rt.state.Arrays = in.state.Arrays
		if rt.runner != nil {
			rt.runner.setState(rt.state)
		}
	}
	for i, ie := range img.edges {
		ch := newChannel(len(ie.items))
		for _, v := range ie.items {
			ch.Push(v)
		}
		ch.pushed = ie.pushed
		ch.popped = ie.popped
		e.chans[i] = ch
	}
	copy(e.pending, img.pending)
	e.Firings = img.firings
	return img.iteration, nil
}

// RunFromCheckpoint restores data into the engine and runs the remaining
// steady-state iterations up to total (the run's original iteration
// count). The initialization schedule is not re-run — its effects are part
// of the checkpointed state.
func (e *Engine) RunFromCheckpoint(data []byte, total int) error {
	it, err := e.RestoreCheckpoint(data)
	if err != nil {
		return err
	}
	if int64(total) < it {
		return fmt.Errorf("exec: checkpoint is at iteration %d, past the requested total %d", it, total)
	}
	return e.RunSteady(total - int(it))
}
