package exec

import (
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/wfunc"
)

// This file is the engines' glue to internal/obs. Observability is opt-in:
// when disabled every engine holds nil profiler/recorder pointers and the
// hot paths pay one nil check; when enabled, filter tapes are wrapped in
// counting adapters and firings are timed.

// nodeNames lists node names indexed by node ID (the profiler's indexing).
func nodeNames(g *ir.Graph) []string {
	names := make([]string, len(g.Nodes))
	for _, n := range g.Nodes {
		names[n.ID] = n.Name
	}
	return names
}

// sjCounts returns the items one firing of a splitter or joiner pops and
// pushes, mirroring exactly what the fire loops do (nil ports consume but
// do not produce on splitters, and are skipped entirely on joiners).
func sjCounts(n *ir.Node) (pops, pushes int64) {
	switch n.Kind {
	case ir.NodeSplitter:
		if n.SJ.Kind == ir.SJDuplicate {
			pops = 1
			for _, e := range n.Out {
				if e != nil {
					pushes++
				}
			}
			return
		}
		for p, e := range n.Out {
			w := int64(n.SJ.Weights[p])
			pops += w
			if e != nil {
				pushes += w
			}
		}
	case ir.NodeJoiner:
		for p, e := range n.In {
			if e == nil {
				continue
			}
			w := int64(n.SJ.Weights[p])
			pops += w
			pushes += w
		}
	}
	return
}

// profileSJ credits one splitter/joiner firing's tape traffic. Filters are
// counted per-operation through wrapped tapes instead; splitters and
// joiners have static per-firing traffic, so arithmetic is cheaper and
// identical across engines.
func profileSJ(st *obs.FilterStats, n *ir.Node) {
	pops, pushes := sjCounts(n)
	st.AddPops(pops)
	st.AddPushes(pushes)
}

// obsTape wraps a stable tape (parallel SliceQueue, dynamic dynIn/dynOut)
// with per-operation counting. lenFn, when set, samples output occupancy
// after each push for the high-water mark.
type obsTape struct {
	inner wfunc.Tape
	st    *obs.FilterStats
	lenFn func() int
}

func (t *obsTape) Peek(i int) float64 {
	t.st.AddPeek()
	return t.inner.Peek(i)
}

func (t *obsTape) Pop() float64 {
	t.st.AddPop()
	return t.inner.Pop()
}

func (t *obsTape) Push(v float64) {
	t.st.AddPush()
	t.inner.Push(v)
	if t.lenFn != nil {
		t.st.NoteOccupancy(int64(t.lenFn()))
	}
}

// seqObsTape is the sequential engine's counting tape. It resolves the
// channel through the engine on every operation because Restore replaces
// channel objects wholesale; a direct pointer would go stale.
type seqObsTape struct {
	e    *Engine
	edge int
	st   *obs.FilterStats
	out  bool
}

func (t *seqObsTape) Peek(i int) float64 {
	t.st.AddPeek()
	return t.e.chans[t.edge].Peek(i)
}

func (t *seqObsTape) Pop() float64 {
	t.st.AddPop()
	return t.e.chans[t.edge].Pop()
}

func (t *seqObsTape) Push(v float64) {
	t.st.AddPush()
	ch := t.e.chans[t.edge]
	ch.Push(v)
	if t.out {
		t.st.NoteOccupancy(int64(ch.Len()))
	}
}

// adoptObs attaches a profiler and/or trace recorder to the engine,
// wrapping filter tapes in counting adapters. The parallel engine calls it
// on its scratch init engine so the init transient lands in the same
// counters as the steady state.
func (e *Engine) adoptObs(prof *obs.Profiler, rec *obs.Recorder) {
	e.prof, e.rec = prof, rec
	if rec != nil {
		for _, n := range e.G.Nodes {
			if n.Kind == ir.NodeFilter {
				rec.Lane(n.ID, n.Name)
			}
		}
		e.laneSched = len(e.G.Nodes)
		rec.Lane(e.laneSched, "steady iterations")
	}
	if prof == nil {
		return
	}
	for _, rt := range e.nodes {
		n := rt.node
		if n.Kind != ir.NodeFilter {
			continue
		}
		if edge := n.InEdge(); edge != nil {
			rt.inT = &seqObsTape{e: e, edge: edge.ID, st: prof.At(n.ID)}
		}
		if edge := n.OutEdge(); edge != nil {
			rt.outT = &seqObsTape{e: e, edge: edge.ID, st: prof.At(n.ID), out: true}
		}
	}
}

// Profile returns the engine's profiler (nil unless Options.Profile).
func (e *Engine) Profile() *obs.Profiler { return e.prof }

// TraceRecorder returns the engine's trace recorder (nil unless attached).
func (e *Engine) TraceRecorder() *obs.Recorder { return e.rec }

// Profile returns the engine's profiler (nil unless Options.Profile).
func (pe *ParallelEngine) Profile() *obs.Profiler { return pe.prof }

// TraceRecorder returns the engine's trace recorder (nil unless attached).
func (pe *ParallelEngine) TraceRecorder() *obs.Recorder { return pe.rec }

// Profile returns the engine's profiler (nil unless Options.Profile).
func (d *DynamicEngine) Profile() *obs.Profiler { return d.prof }

// TraceRecorder returns the engine's trace recorder (nil unless attached).
func (d *DynamicEngine) TraceRecorder() *obs.Recorder { return d.rec }

// traceFault records a fault-injection instant on the node's lane.
func traceFault(rec *obs.Recorder, tid int, name, kind string) {
	if rec != nil {
		rec.Instant(tid, "fault: "+kind, "fault", name)
	}
}

// traceRecovery records a recovery-action instant on the node's lane.
func traceRecovery(rec *obs.Recorder, tid int, name, action string) {
	if rec != nil {
		rec.Instant(tid, "recover: "+action, "recovery", name)
	}
}
