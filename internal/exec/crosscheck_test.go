package exec

import (
	"math/rand"
	"testing"

	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

// TestEngineMatchesAbstractSim: the value-carrying engine and the abstract
// count-only simulation must agree on every channel occupancy after init
// plus k steady iterations, for randomized rate pipelines with split-joins.
func TestEngineMatchesAbstractSim(t *testing.T) {
	mk := func(name string, peek, pop, push int) *ir.Filter {
		b := wfunc.NewKernel(name, peek, pop, push)
		var body []wfunc.Stmt
		for i := 0; i < pop; i++ {
			body = append(body, wfunc.Pop1())
		}
		for i := 0; i < push; i++ {
			body = append(body, wfunc.Push1(wfunc.Ci(i)))
		}
		b.WorkBody(body...)
		in, out := ir.TypeFloat, ir.TypeFloat
		if pop == 0 && peek == 0 {
			in = ir.TypeVoid
		}
		if push == 0 {
			out = ir.TypeVoid
		}
		return &ir.Filter{Kernel: b.Build(), In: in, Out: out}
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		pushA := rng.Intn(3) + 1
		popB := rng.Intn(3) + 1
		pushB := rng.Intn(3) + 1
		peekB := popB + rng.Intn(3)
		wide := rng.Intn(2) == 0

		var mid ir.Stream = mk("B", peekB, popB, pushB)
		if wide {
			mid = ir.SJ("sj", ir.RoundRobin(1, 1), ir.RoundRobin(1, 1),
				mk("B", peekB, popB, pushB), mk("C", peekB, popB, pushB))
		}
		p := ir.Pipe("main", mk("src", 0, 0, pushA), mid, mk("snk", 2, 2, 0))
		g, err := ir.FlattenStream("x", p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.Compute(g)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewFromGraph(g, s)
		if err != nil {
			t.Fatal(err)
		}
		iters := rng.Intn(4) + 1
		if err := e.Run(iters); err != nil {
			t.Fatal(err)
		}

		sim := sched.NewSim(g)
		run := func(entries []sched.Entry) {
			for _, en := range entries {
				for i := 0; i < en.Count; i++ {
					sim.Fire(en.Node)
				}
			}
		}
		run(s.Init)
		for k := 0; k < iters; k++ {
			run(s.Steady)
		}
		for _, edge := range g.Edges {
			if got, want := e.ChannelLen(edge), sim.Items[edge.ID]; got != want {
				t.Fatalf("trial %d: channel %s holds %d items, abstract sim says %d",
					trial, edge, got, want)
			}
		}
		for _, n := range g.Nodes {
			if got, want := e.FiredCount(n), int64(sim.Fired[n.ID]); got != want {
				t.Fatalf("trial %d: node %s fired %d times, abstract sim says %d",
					trial, n.Name, got, want)
			}
		}
	}
}
