package exec

import (
	"fmt"
	"strings"
	"time"
)

// ExecError is a structured runtime failure of one node firing. Tape
// misuse (pop on empty, peek out of range), IL runtime errors, injected
// faults, and native-kernel panics all surface as (or wrapped in) an
// ExecError so callers can recover the failing filter, operation, and
// firing index programmatically instead of parsing a panic string.
type ExecError struct {
	Filter    string // node name
	Op        string // "pop", "peek", "push", "work", "injected panic", "injected stall", ...
	Iteration int64  // the filter's firing index when the fault occurred
	Err       error  // underlying cause (may be nil for pure tape faults)
}

// Error implements error.
func (e *ExecError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("exec: filter %s: %s at firing %d: %v", e.Filter, e.Op, e.Iteration, e.Err)
	}
	return fmt.Sprintf("exec: filter %s: %s at firing %d", e.Filter, e.Op, e.Iteration)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ExecError) Unwrap() error { return e.Err }

// tapeFault is the panic payload of channel/tape misuse. It carries the
// operation so the recover site (which knows the firing node) can build a
// full ExecError; the tape itself does not know who is using it.
type tapeFault struct {
	op     string
	detail string
}

func (f tapeFault) Error() string { return fmt.Sprintf("%s: %s", f.op, f.detail) }

// asExecError converts a recovered panic value into an *ExecError carrying
// the node and firing context.
func asExecError(filter string, firing int64, r any) *ExecError {
	switch r := r.(type) {
	case *ExecError:
		return r
	case tapeFault:
		return &ExecError{Filter: filter, Op: r.op, Iteration: firing, Err: fmt.Errorf("%s", r.detail)}
	case error:
		return &ExecError{Filter: filter, Op: "work", Iteration: firing, Err: r}
	default:
		return &ExecError{Filter: filter, Op: "work", Iteration: firing, Err: fmt.Errorf("%v", r)}
	}
}

// FilterStatus is one node's wait state in a watchdog report: what it was
// last seen doing, on which tape, and for how long.
type FilterStatus struct {
	Name     string
	Worker   int           // mapped-engine worker/partition running the node (-1 elsewhere)
	State    string        // "waiting recv", "waiting send", "in work", "stalled (injected)"
	Edge     string        // "Src->Dst" tape name, when blocked on one
	Buffered int           // items visible to the node on that tape
	Blocked  time.Duration // how long it has been in this state
}

func (s FilterStatus) String() string {
	b := s.Name
	if s.Worker >= 0 {
		b += fmt.Sprintf(" (worker %d)", s.Worker)
	}
	b += ": " + s.State
	if s.Edge != "" {
		b += fmt.Sprintf(" on %s (%d items buffered)", s.Edge, s.Buffered)
	}
	if s.Blocked > 0 {
		b += fmt.Sprintf(" for %s", s.Blocked.Round(time.Millisecond))
	}
	return b
}

// DeadlockError reports a watchdog-detected stall: no item or batch moved
// anywhere in the engine for at least Interval. Blocked lists every node
// still waiting and what it is waiting on; Cycle names the wait-cycle (or
// terminal chain) the watchdog traced through the blocked nodes.
type DeadlockError struct {
	Engine   string // "parallel" or "dynamic"
	Interval time.Duration
	Blocked  []FilterStatus
	Cycle    []string
}

// Error implements error.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exec: %s engine watchdog: no progress for %s", e.Engine, e.Interval.Round(time.Millisecond))
	for _, s := range e.Blocked {
		b.WriteString("; ")
		b.WriteString(s.String())
	}
	if len(e.Cycle) > 0 {
		fmt.Fprintf(&b, "; wait-cycle: %s", strings.Join(e.Cycle, " -> "))
	}
	return b.String()
}
