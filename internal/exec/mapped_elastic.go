package exec

import (
	"fmt"
	"sync/atomic"

	"streamit/internal/faults"
	"streamit/internal/ir"
	"streamit/internal/obs"
	"streamit/internal/wfunc"
)

// Elastic runtime re-planning. The mapped engine's epoch barriers are
// exactly the points where PR 5's crash recovery re-plans and rolls back:
// all workers have retired the same iteration, every channel is drained,
// and a coordinated checkpoint image of the whole engine state was just
// taken. The elastic controller reuses that machinery for voluntary
// re-plans: a windowed imbalance detector over the profiler's per-node
// work counters (or an explicit Resize request) picks a new assignment —
// over the SAME elaborated graph, so the schedule and checkpoint
// fingerprint never change — rebuilds the worker topology, and restores
// the barrier image onto it. The continuation is bit-identical to an
// uninterrupted run because the restored image IS the uninterrupted run's
// state at that barrier.

// DefaultElasticWindow is the imbalance-observation window in steady
// iterations (macro-cycles on pipelined plans).
const DefaultElasticWindow = 16

// DefaultElasticThreshold is the max/mean per-worker busy-time ratio that
// trips a re-plan.
const DefaultElasticThreshold = 1.25

// elasticImprove is the minimum factor by which a voluntary re-plan must
// cut the predicted bottleneck worker's busy time before the controller
// acts. The max/mean detector can stay tripped forever when hot filters
// are scarcer than workers (one dominant filter keeps max/mean near the
// worker count no matter how the rest are packed), and measurement jitter
// makes the packer emit equivalent-but-different assignments each window;
// without this gate the controller would rebuild the topology at every
// barrier for no throughput gain.
const elasticImprove = 1.10

// elasticState is the replan controller's runtime.
type elasticState struct {
	window    int64
	threshold float64

	// One-shot scheduled resize from Options.ResizeAt/ResizeTo.
	resizeAt int64
	resizeTo int

	// Pending Resize request; 0 means none. Written by Resize (any
	// goroutine), consumed at the next barrier.
	requested atomic.Int64

	win      *obs.WorkWindow
	winStart int64
	replans  int
}

// newElasticState validates and resolves the elastic options.
func newElasticState(opts Options) (*elasticState, error) {
	window := int64(opts.ElasticWindow)
	if window == 0 {
		window = DefaultElasticWindow
	}
	if window < 1 {
		return nil, fmt.Errorf("exec: elastic window %d out of range (want >= 1 iterations)", opts.ElasticWindow)
	}
	threshold := opts.ElasticThreshold
	if threshold == 0 {
		threshold = DefaultElasticThreshold
	}
	if threshold <= 1 {
		return nil, fmt.Errorf("exec: elastic threshold %v out of range (want > 1)", opts.ElasticThreshold)
	}
	if (opts.ResizeAt != 0) != (opts.ResizeTo != 0) {
		return nil, fmt.Errorf("exec: ResizeAt and ResizeTo must be set together")
	}
	if opts.ResizeAt < 0 || opts.ResizeTo < 0 {
		return nil, fmt.Errorf("exec: scheduled resize %d@%d out of range", opts.ResizeTo, opts.ResizeAt)
	}
	return &elasticState{window: window, threshold: threshold,
		resizeAt: opts.ResizeAt, resizeTo: opts.ResizeTo}, nil
}

// Resize requests an elastic re-plan onto n workers, consumed at the next
// coordinated-checkpoint barrier. Safe to call from any goroutine while
// the engine runs (the streamit-serve control plane's entry point).
func (me *MappedEngine) Resize(n int) error {
	if me.elastic == nil {
		return fmt.Errorf("exec: Resize needs Options.Elastic")
	}
	if n < 1 {
		return fmt.Errorf("exec: cannot resize to %d workers", n)
	}
	me.elastic.requested.Store(int64(n))
	return nil
}

// Replans reports how many elastic re-plans the engine has performed.
func (me *MappedEngine) Replans() int {
	if me.elastic == nil {
		return 0
	}
	return me.elastic.replans
}

// elasticReset opens a fresh observation window at the current position
// (called when a drive starts, so earlier runs and the init transient
// never pollute the first sample).
func (me *MappedEngine) elasticReset() {
	es := me.elastic
	es.win = obs.NewWorkWindow(me.prof)
	es.winStart = me.iter
}

// elasticStep runs the replan controller at a checkpoint barrier
// (immediately after the barrier image was snapshotted). It decides
// whether to re-plan — a pending resize request always does; otherwise the
// detector waits for a full window and compares the busiest worker's
// windowed work against the worker mean — and performs the re-plan by
// re-packing the same graph, rebuilding the topology, and restoring the
// just-taken image onto it.
func (me *MappedEngine) elasticStep() error {
	es := me.elastic
	target := me.Workers
	forced := false
	if es.resizeAt > 0 && me.iter >= es.resizeAt && es.resizeTo > 0 {
		target, forced = es.resizeTo, true
		es.resizeAt, es.resizeTo = 0, 0
	}
	if n := es.requested.Swap(0); n > 0 {
		target, forced = int(n), true
	}
	if !forced && me.iter-es.winStart < es.window {
		return nil
	}
	sample := es.win.Advance()
	es.winStart = me.iter
	if !forced && !me.imbalanced(sample) {
		return nil
	}
	assign := me.replanAssign(target, sample)
	if target == me.Workers && equalAssign(assign, me.Assign) {
		return nil // already as balanced as the packer can make it
	}
	if !forced {
		cur := busiestNS(me.Assign, me.Workers, sample.WorkNS)
		cand := busiestNS(assign, target, sample.WorkNS)
		if float64(cand)*elasticImprove > float64(cur) {
			return nil // repacking would not meaningfully lift the bottleneck
		}
	}
	if me.rec != nil {
		me.rec.Instant(len(me.G.Nodes), "elastic replan", "replan",
			fmt.Sprintf("iteration %d: %d -> %d workers", me.iter, me.Workers, target))
	}
	me.Workers = target
	me.Assign = assign
	if err := me.buildTopology(); err != nil {
		return err
	}
	if err := me.applyImage(me.lastImg); err != nil {
		return fmt.Errorf("exec: elastic replan at iteration %d: %w", me.iter, err)
	}
	es.replans++
	return nil
}

// busiestNS returns the bottleneck worker's busy time under an assignment,
// evaluated against one window's measured per-node work.
func busiestNS(assign []int, workers int, workNS []int64) int64 {
	busy := make([]int64, workers)
	for id, w := range assign {
		if id < len(workNS) {
			busy[w] += workNS[id]
		}
	}
	var max int64
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	return max
}

// imbalanced applies the max/mean detector to one window's per-worker
// busy time.
func (me *MappedEngine) imbalanced(sample obs.WindowSample) bool {
	busy := make([]int64, me.Workers)
	for id, w := range me.Assign {
		busy[w] += sample.WorkNS[id]
	}
	var max, sum int64
	for _, b := range busy {
		if b > max {
			max = b
		}
		sum += b
	}
	if sum <= 0 {
		return false
	}
	mean := float64(sum) / float64(me.Workers)
	return float64(max) >= me.elastic.threshold*mean
}

// replanAssign picks the new node→worker assignment for target workers:
// the plan-aware measured hook first (partition.ExecPlan.AssignMeasured
// through core), then the static re-plan hook, then the engine's own
// measured packing. Any candidate that fails validation (coverage, worker
// range, stage clusters whole) falls through to the next.
func (me *MappedEngine) replanAssign(target int, sample obs.WindowSample) []int {
	if me.ReplanMeasured != nil {
		perFiring := sample.PerFiring(nodeNames(me.G))
		if a := me.ReplanMeasured(target, perFiring); validAssign(a, len(me.G.Nodes), target) && me.clustersIntact(a) {
			return a
		}
	}
	if me.Replan != nil {
		if a := me.Replan(target); validAssign(a, len(me.G.Nodes), target) && me.clustersIntact(a) {
			return a
		}
	}
	return me.measuredAssign(target, sample)
}

// measuredAssign is the engine-internal fallback packer: LPT over the
// window's measured per-node work (total nanoseconds in the window, which
// already weights by firing rate), with stage clusters packed whole.
func (me *MappedEngine) measuredAssign(target int, sample obs.WindowSample) []int {
	type unit struct {
		members []int
		w       int64
	}
	var units []unit
	grouped := make([]bool, len(me.G.Nodes))
	if me.swp != nil {
		for _, members := range me.swp.clusters {
			u := unit{members: members}
			for _, id := range members {
				grouped[id] = true
				u.w += sample.WorkNS[id]
			}
			units = append(units, u)
		}
	}
	for _, n := range me.G.Nodes {
		if !grouped[n.ID] {
			units = append(units, unit{members: []int{n.ID}, w: sample.WorkNS[n.ID]})
		}
	}
	for i := range units {
		if units[i].w < 1 {
			units[i].w = 1
		}
	}
	// Stable LPT: heaviest first, ties in first-member order.
	for i := 1; i < len(units); i++ {
		for j := i; j > 0 && units[j].w > units[j-1].w; j-- {
			units[j], units[j-1] = units[j-1], units[j]
		}
	}
	loads := make([]int64, target)
	assign := make([]int, len(me.G.Nodes))
	for _, u := range units {
		best := 0
		for w := 1; w < target; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		for _, id := range u.members {
			assign[id] = best
		}
		loads[best] += u.w
	}
	return assign
}

// equalAssign reports whether two assignments are identical.
func equalAssign(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OverrideWork replaces the steady-state work function of every rewritten
// instance of the named filter — the instance itself, or all of its
// fission replicas — for this engine only. The override fires in place of
// the kernel and must honor the kernel's static rates (pop exactly its pop
// rate, push exactly its push rate) so schedules and checkpoints stay
// valid. Filters folded into a fused segment cannot be overridden
// individually; the error names the segment to target instead. The
// sequential shared-artifact engine has the same hook (Engine.OverrideWork);
// this one is what lets benchmarks and tests skew one filter's cost on a
// live mapped topology, e.g. to exercise the elastic replan controller.
func (me *MappedEngine) OverrideWork(name string, fn func(in, out wfunc.Tape)) error {
	matched := 0
	var fusedIn string
	for _, n := range me.G.Nodes {
		if n.Kind != ir.NodeFilter {
			continue
		}
		base := faults.BaseName(n.Name)
		if n.Name == name || base == name {
			me.nodes[n.ID].override = fn
			matched++
			continue
		}
		for _, part := range faults.SplitConstituents(base) {
			if part == name {
				fusedIn = base
			}
		}
	}
	if matched == 0 {
		if fusedIn != "" {
			return fmt.Errorf("exec: override target %q is fused into segment %q; override the segment", name, fusedIn)
		}
		return fmt.Errorf("exec: override target %q is not a filter in the graph", name)
	}
	return nil
}
