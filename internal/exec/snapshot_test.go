package exec

import (
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
)

// TestSnapshotRollback: speculative execution can be rolled back exactly —
// running k iterations, restoring, and re-running produces identical
// output (the paper's envisioned speculation use of sdep).
func TestSnapshotRollback(t *testing.T) {
	build := func() (*ir.Program, *[]float64) {
		prog := apps.FMRadio(4, 16)
		pipe := prog.Top.(*ir.Pipeline)
		snk, got := SliceSink("cap")
		pipe.Children[len(pipe.Children)-1] = snk
		return prog, got
	}
	prog, got := build()
	e, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	base := len(*got)

	// Speculate 10 iterations, record output.
	if err := e.RunSteady(10); err != nil {
		t.Fatal(err)
	}
	spec := append([]float64(nil), (*got)[base:]...)
	firedAfter := e.Firings

	// Roll back and replay: the sink keeps its (external) items, so clear
	// the capture slice back to the snapshot point.
	e.Restore(snap)
	*got = (*got)[:base]
	if e.Firings >= firedAfter {
		t.Fatal("rollback did not restore firing counters")
	}
	if err := e.RunSteady(10); err != nil {
		t.Fatal(err)
	}
	replay := (*got)[base:]
	if len(replay) != len(spec) {
		t.Fatalf("replay produced %d items, speculation %d", len(replay), len(spec))
	}
	for i := range spec {
		if spec[i] != replay[i] {
			t.Fatalf("replay diverges at %d: %v vs %v", i, replay[i], spec[i])
		}
	}
}

// TestSnapshotIsolation: mutating the engine after a snapshot does not
// corrupt the snapshot.
func TestSnapshotIsolation(t *testing.T) {
	e, err := New(apps.FMRadio(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	before := snap.firings
	if err := e.RunSteady(7); err != nil {
		t.Fatal(err)
	}
	if snap.firings != before {
		t.Fatal("snapshot mutated by later execution")
	}
	e.Restore(snap)
	if e.Firings != before {
		t.Fatalf("restore gave %d firings, want %d", e.Firings, before)
	}
}
