package exec

import (
	"fmt"

	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// sender adapts the engine to the wfunc.Messenger interface for one filter.
type sender struct {
	e    *Engine
	node *ir.Node
}

// Send implements wfunc.Messenger. The message is scheduled for delivery to
// every receiver registered with the portal:
//
//   - receiver upstream of the sender: delivered immediately after the
//     receiver's work invocation that makes n(O_B) reach
//     mi{O_B->O_A}(s + push_A*λ)   (paper equation 2);
//
//   - receiver downstream: delivered immediately before the invocation that
//     would push n(O_B) past ma{O_A->O_B}(s + push_A*(λ-1))   (equation 3);
//
// where s is n(O_A) at send time and λ the message latency. Best-effort
// messages are delivered before the receiver's next firing.
func (s *sender) Send(portal int, handler string, args []float64, minLat, maxLat int, bestEffort bool) error {
	e := s.e
	if portal < 0 || portal >= len(e.G.Portals) {
		return fmt.Errorf("filter %s sends to unknown portal %d", s.node.Name, portal)
	}
	p := e.G.Portals[portal]
	for _, f := range p.Receivers {
		r := e.G.FilterNode[f]
		if r == nil {
			return fmt.Errorf("portal %s receiver %s not in graph", p.Name, f.Kernel.Name)
		}
		if _, ok := f.Kernel.Handlers[handler]; !ok {
			return fmt.Errorf("portal %s receiver %s has no handler %q", p.Name, f.Kernel.Name, handler)
		}
		m := &message{handler: handler, args: args, bestEffort: bestEffort}
		if !bestEffort {
			oA, err := progressTapeOf(s.node)
			if err != nil {
				return err
			}
			oB, err := progressTapeOf(r)
			if err != nil {
				return err
			}
			sCount := e.progress(s.node)
			pushA := progressRateOf(s.node)
			lam := int64(minLat)
			switch {
			case e.G.Downstream(r, s.node): // receiver upstream
				m.upstream = true
				target, err := e.miTapes(oB, oA, s.node, sCount+pushA*lam)
				if err != nil {
					return err
				}
				if e.progress(r) > target {
					return fmt.Errorf("message from %s to upstream %s with latency %d is undeliverable: receiver already past the wavefront (add a MAX_LATENCY constraint)", s.node.Name, r.Name, lam)
				}
				m.target = target
			case e.G.Downstream(s.node, r): // receiver downstream
				target, err := e.maTapes(oA, oB, r, sCount+pushA*(lam-1))
				if err != nil {
					return err
				}
				if e.progress(r) > target {
					return fmt.Errorf("message from %s to downstream %s with latency %d is undeliverable: receiver already past the wavefront", s.node.Name, r.Name, lam)
				}
				m.target = target
			default:
				return fmt.Errorf("message from %s to %s: parallel receivers are beyond this implementation (as in the paper)", s.node.Name, r.Name)
			}
		}
		e.pending[r.ID] = append(e.pending[r.ID], m)
	}
	return nil
}

// deliverDue delivers pending messages for node n. before=true is invoked
// immediately before a firing (downstream and best-effort deliveries);
// before=false immediately after (upstream deliveries).
func (e *Engine) deliverDue(n *ir.Node, before bool) error {
	msgs := e.pending[n.ID]
	if len(msgs) == 0 {
		return nil
	}
	var keep []*message
	nOB := e.progress(n)
	pushB := progressRateOf(n)
	for _, m := range msgs {
		due := false
		switch {
		case m.bestEffort:
			due = before
		case m.upstream:
			// Deliver after the firing that brings n(O_B) to the target.
			due = !before && nOB >= m.target
		default:
			// Deliver before the firing that would push past the target.
			due = before && nOB+pushB > m.target
		}
		if due {
			if e.rec != nil {
				e.rec.Instant(n.ID, "deliver "+m.handler, "teleport", n.Name)
			}
			if err := e.invokeHandler(n, m); err != nil {
				return err
			}
		} else {
			keep = append(keep, m)
		}
	}
	e.pending[n.ID] = keep
	return nil
}

func (e *Engine) invokeHandler(n *ir.Node, m *message) error {
	k := n.Filter.Kernel
	h := k.Handlers[m.handler]
	if h == nil {
		return fmt.Errorf("%s: missing handler %q", n.Name, m.handler)
	}
	env := wfunc.NewEnv(h)
	env.State = e.nodes[n.ID].state
	env.SetArgs(m.args)
	// Handlers may send further messages (paper appendix restriction 4
	// permits this; they may not touch the tapes, which wfunc.Validate
	// enforces statically).
	env.Msg = &sender{e: e, node: n}
	return wfunc.Exec(h, env)
}
