package exec

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// The pipelined strategies lift the mapped engine's two historical
// restrictions — feedback loops and teleport messaging — by hosting them
// in single-worker stage clusters. These tests run both restricted
// workload classes through the full conformance harness (bit-identical
// sink streams AND bit-identical engine state vs the sequential engine)
// under both pipelined strategies and both backends.

func pipelinedConformance(t *testing.T, app apps.App) {
	t.Helper()
	for _, strat := range []partition.Strategy{partition.StratSWP, partition.StratCombined} {
		for _, backend := range []Backend{BackendVM, BackendInterp} {
			t.Run(fmt.Sprintf("%s/%v", strat, backend), func(t *testing.T) {
				runMappedConformance(t, app, strat, backend)
			})
		}
	}
}

// TestMappedPipelinedFeedback: a feedback-comb program (unrunnable on the
// lockstep mapped engine) runs pipelined and matches the sequential engine
// exactly.
func TestMappedPipelinedFeedback(t *testing.T) {
	pipelinedConformance(t, apps.App{Name: "Reverb",
		Build: func() *ir.Program { return apps.Reverb(8, 0.6) }})
}

// TestMappedPipelinedTeleport: the frequency-hopping radio's teleport
// messaging (upstream setFreq with latency constraints) runs pipelined —
// the messaging hull forms one stage cluster — and matches the sequential
// engine exactly, including delivery timing (asserted through state
// equality; a mistimed retune changes the mixing table and every
// downstream sample).
func TestMappedPipelinedTeleport(t *testing.T) {
	pipelinedConformance(t, apps.App{Name: "FreqHoppingRadio",
		Build: func() *ir.Program { return apps.FreqHoppingRadio(true) }})
}

// TestMappedLockstepStillGated: without a pipelined plan the mapped
// constructor still rejects feedback and messaging graphs (the lockstep
// schedule cannot host them), steering callers to a pipelined plan.
func TestMappedLockstepStillGated(t *testing.T) {
	cases := []struct {
		name string
		prog *ir.Program
	}{
		{"feedback", apps.Reverb(4, 0.5)},
		{"teleport", apps.FreqHoppingRadio(true)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ir.Flatten(tc.prog)
			if err != nil {
				t.Fatal(err)
			}
			s, err := sched.Compute(g)
			if err != nil {
				t.Fatal(err)
			}
			assign := make([]int, len(g.Nodes))
			if _, err := NewMappedOpts(g, s, assign, 1, Options{Backend: BackendVM}); err == nil {
				t.Fatal("lockstep mapped constructor accepted a graph it cannot schedule")
			}
		})
	}
}

// TestMappedSWPStageSkew sanity-checks that pipelined plans actually skew:
// the FM radio's stage schedule must have more than one level (otherwise
// the suite would be exercising degenerate, skew-free pipelining).
func TestMappedSWPStageSkew(t *testing.T) {
	prog := apps.FMRadio(4, 16)
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := partition.PipelineStages(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumLevels < 3 {
		t.Fatalf("FMRadio staged into %d levels; expected a deep pipeline", st.NumLevels)
	}
	me, err := NewMappedOpts(g, s, defaultAssign(g, 3), 3,
		Options{Backend: BackendVM, Stages: st.Levels, StageClusters: st.Clusters})
	if err != nil {
		t.Fatal(err)
	}
	stages := me.Stages()
	skewed := false
	for _, v := range stages {
		if v != stages[0] {
			skewed = true
		}
	}
	if !skewed {
		t.Fatal("pipelined engine reports uniform stage offsets; no skew")
	}
	if err := me.Run(3); err != nil {
		t.Fatal(err)
	}
}

// skewedCheckpoint drives a fresh pipelined engine partway into a
// segIters-iteration segment — stopping at the cycle barrier after the
// given macro-cycle count — and returns the stage-skewed checkpoint image
// along with the engine (still mid-segment). Mirrors Run's pipelined
// branch, but stops before the epilogue so upstream stages have retired
// iterations downstream stages have not, and flush batches sit half-built
// in the staging buffers.
func skewedCheckpoint(tb testing.TB, mb *mappedBuild, segIters, cycles int64) ([]byte, *MappedEngine) {
	tb.Helper()
	me := mb.engine(tb, Options{})
	if err := me.setup(); err != nil {
		tb.Fatal(err)
	}
	sw := me.swp
	if sw == nil {
		tb.Fatal("build is not pipelined; skewed checkpoints need a stage schedule")
	}
	sw.base, sw.segIters = 0, segIters
	if cycles >= segIters+sw.maxStage() {
		tb.Fatalf("cycle %d is not mid-segment (total %d)", cycles, segIters+sw.maxStage())
	}
	if err := me.driveTo(cycles); err != nil {
		tb.Fatal(err)
	}
	return mappedCkptBytes(tb, me, 0), me
}

// stagingResidue sums the items parked in unflushed cross-worker staging
// buffers.
func stagingResidue(me *MappedEngine) int {
	total := 0
	for _, st := range me.stage {
		if st != nil {
			total += st.Len()
		}
	}
	return total
}

// TestMappedPipelinedMidSegmentCheckpoint: a checkpoint taken between
// segment boundaries carries the SWPS stage trailer and the in-flight
// staging residue; it restores into a fresh pipelined engine — rebuilding
// the queue/staging split from the flush schedule — and the resumed run
// finishes the segment bit-identical to an uninterrupted one. The
// sequential engine must refuse the same image.
func TestMappedPipelinedMidSegmentCheckpoint(t *testing.T) {
	const segIters, cycles = 16, 11 // 11 = stage(level 1) + 3: three unflushed iterations staged
	build := func() *ir.Program { return apps.FMRadio(2, 8) }

	refB := buildMapped(t, build, partition.StratSWP)
	ref := refB.engine(t, Options{})
	if err := ref.Run(segIters); err != nil {
		t.Fatal(err)
	}
	want := mappedCkptBytes(t, ref, segIters)

	intB := buildMapped(t, build, partition.StratSWP)
	img, first := skewedCheckpoint(t, intB, segIters, cycles)
	if got := stagingResidue(first); got == 0 {
		t.Fatal("mid-segment barrier has no staging residue; the checkpoint exercises nothing")
	}

	// Inspection restore: the split must land items back in staging.
	probe := intB.engine(t, Options{})
	if it, err := probe.RestoreCheckpoint(img); err != nil {
		t.Fatalf("skewed restore: %v", err)
	} else if it >= segIters || it < 0 {
		t.Fatalf("skewed image reports %d retired iterations, want mid-segment", it)
	}
	if got, want := stagingResidue(probe), stagingResidue(first); got != want {
		t.Fatalf("restored staging residue %d items, checkpointed engine holds %d", got, want)
	}

	// Resume restore: finish the segment, outputs bit-identical.
	resumed := intB.engine(t, Options{})
	if err := resumed.RunFromCheckpoint(img, segIters); err != nil {
		t.Fatalf("resume: %v", err)
	}
	compareOuts(t, refB.outs, intB.outs, "mid-segment resume")
	if got := mappedCkptBytes(t, resumed, segIters); !bytes.Equal(want, got) {
		t.Fatalf("resumed final state differs from uninterrupted run (%d vs %d bytes)", len(want), len(got))
	}

	// A pipelined resume must target the segment the barrier belongs to.
	wrong := intB.engine(t, Options{})
	if err := wrong.RunFromCheckpoint(img, segIters+1); err == nil {
		t.Fatal("pipelined resume accepted a mismatched segment length")
	}

	// The sequential engine cannot host a stage-skewed barrier.
	se, err := NewFromGraphBackend(intB.g2, intB.s2, BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.RunFromCheckpoint(img, segIters); err == nil ||
		!strings.Contains(err.Error(), "stage-skewed") {
		t.Fatalf("sequential restore of a skewed image: err = %v, want a stage-skew rejection", err)
	}
}

// TestMappedPipelinedCheckpointGolden pins the stage-skewed on-disk format:
// a mid-segment pipelined checkpoint of a fixed app must match the
// committed golden image byte for byte, and the golden image must restore
// and finish its segment. Regenerate (only on an intentional format
// change) with STREAMIT_UPDATE_GOLDEN=1 go test ./internal/exec -run
// MappedPipelinedCheckpointGolden.
func TestMappedPipelinedCheckpointGolden(t *testing.T) {
	const segIters, cycles = 16, 11
	build := func() *ir.Program { return apps.FMRadio(2, 8) }
	mb := buildMapped(t, build, partition.StratSWP)
	img, _ := skewedCheckpoint(t, mb, segIters, cycles)

	path := filepath.Join("testdata", "mapped_fmradio_swp.ckpt")
	if os.Getenv("STREAMIT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(img))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden image (regenerate with STREAMIT_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(want, img) {
		t.Fatalf("pipelined checkpoint format drifted from the golden image (%d vs %d bytes); this breaks saved checkpoints", len(img), len(want))
	}
	fresh := buildMapped(t, build, partition.StratSWP).engine(t, Options{})
	if err := fresh.RunFromCheckpoint(want, segIters); err != nil {
		t.Fatalf("golden image does not restore: %v", err)
	}
}

// TestMappedWorkerCrashMidPrologueSWP: a worker crash during the
// pipeline-fill prologue (cycle 2, before the deepest stage has fired at
// all) rolls back to the last per-cycle snapshot — a stage-skewed or
// segment-start image — re-plans onto the survivors, and completes the
// segment bit-identical to a clean sequential run over the same rewritten
// graph.
func TestMappedWorkerCrashMidPrologueSWP(t *testing.T) {
	const iters = 6
	build := func() *ir.Program { return apps.FMRadio(4, 16) }

	sb := buildMapped(t, build, partition.StratSWP)
	se, err := NewFromGraphBackend(sb.g2, sb.s2, BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Run(iters); err != nil {
		t.Fatal(err)
	}

	mb := buildMapped(t, build, partition.StratSWP)
	me := mb.engine(t, Options{Faults: mustPlan(t, "crash:worker1@2"), CheckpointEvery: 1})
	if me.swp == nil {
		t.Fatal("plan is not pipelined")
	}
	if maxStage := me.swp.maxStage(); maxStage <= 2 {
		t.Fatalf("prologue is only %d cycles; crash at cycle 2 is not mid-prologue", maxStage)
	}
	if err := me.Run(iters); err != nil {
		t.Fatalf("crashed pipelined run did not recover: %v", err)
	}
	if me.Workers != 3 {
		t.Errorf("engine degraded to %d workers, want 3", me.Workers)
	}
	if st := me.Degraded()["worker1"]; st.Injected != 1 || st.Crashes != 1 {
		t.Errorf("worker1 stats = %+v, want 1 injection and 1 crash", st)
	}
	compareOuts(t, sb.outs, mb.outs, "crash mid-prologue")
}

// TestMappedChaosSoakSWP: randomized filter faults on pipelined runs under
// a skip policy stay bit-identical to the supervised sequential engine
// (same deterministic injection schedule); adding a worker crash mid-run
// still completes on the survivors with the crash accounted for.
func TestMappedChaosSoakSWP(t *testing.T) {
	const iters = 6
	app := apps.Suite()[0]
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := fmt.Sprintf("rand:3@%d", seed)
			mb := buildMapped(t, app.Build, partition.StratSWP)
			me := mb.engine(t, Options{Faults: mustPlan(t, spec), OnError: mustPolicies(t, "skip")})
			if err := me.Run(iters); err != nil {
				t.Fatalf("chaos run %s: %v", spec, err)
			}
			sb := buildMapped(t, app.Build, partition.StratSWP)
			se, err := NewFromGraphOpts(sb.g2, sb.s2, Options{Faults: mustPlan(t, spec), OnError: mustPolicies(t, "skip")})
			if err != nil {
				t.Fatal(err)
			}
			if err := se.Run(iters); err != nil {
				t.Fatalf("sequential chaos run %s: %v", spec, err)
			}
			compareOuts(t, sb.outs, mb.outs, spec)

			// Random faults plus a mid-prologue worker crash: per-cycle
			// rollback converges and the run completes on the survivors. (No
			// bit-equality claim: filter faults consumed in the aborted epoch
			// are one-shot and are not re-injected after rollback.)
			crashSpec := fmt.Sprintf("rand:2@%d;crash:worker1@%d", seed, seed)
			cb := buildMapped(t, app.Build, partition.StratSWP)
			ce := cb.engine(t, Options{Faults: mustPlan(t, crashSpec), OnError: mustPolicies(t, "skip")})
			if err := ce.Run(iters); err != nil {
				t.Fatalf("chaos run %s: %v", crashSpec, err)
			}
			if st := ce.Degraded()["worker1"]; st.Crashes != 1 {
				t.Errorf("worker1 stats = %+v, want 1 crash", st)
			}
		})
	}
}

// defaultAssign spreads nodes over workers in topological runs, keeping
// PipelineStages clusters intact (test helper).
func defaultAssign(g *ir.Graph, workers int) []int {
	st, err := partition.PipelineStages(g)
	if err != nil {
		panic(err)
	}
	assign := make([]int, len(g.Nodes))
	per := (len(g.Nodes) + workers - 1) / workers
	for i := range assign {
		w := i / per
		if w >= workers {
			w = workers - 1
		}
		assign[i] = w
	}
	for _, members := range st.Clusters {
		for _, id := range members {
			assign[id] = assign[members[0]]
		}
	}
	return assign
}
