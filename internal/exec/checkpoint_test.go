package exec

import (
	"bytes"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/sched"
)

func buildEngine(t *testing.T, prog *ir.Program, backend Backend) *Engine {
	t.Helper()
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromGraphBackend(g, s, backend)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func checkpointBytes(t *testing.T, e *Engine, iteration int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf, iteration); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointRoundTripSuite: on every benchmark app and under both
// work-function backends, a run checkpointed at iteration k and resumed in
// a fresh engine reaches a final state byte-identical to an uninterrupted
// run. The final checkpoint image covers every tape's contents and
// counters, every filter field, every firing count, and pending messages —
// byte equality is full-state bit-identity.
func TestCheckpointRoundTripSuite(t *testing.T) {
	const iters, k = 6, 3
	for _, backend := range []Backend{BackendVM, BackendInterp} {
		backend := backend
		for _, app := range apps.Suite() {
			app := app
			t.Run(app.Name+"/"+backend.String(), func(t *testing.T) {
				// Uninterrupted reference run.
				ref := buildEngine(t, app.Build(), backend)
				if err := ref.Run(iters); err != nil {
					t.Fatal(err)
				}
				want := checkpointBytes(t, ref, iters)

				// Interrupted run: checkpoint at k...
				first := buildEngine(t, app.Build(), backend)
				if err := first.RunInit(); err != nil {
					t.Fatal(err)
				}
				if err := first.RunSteady(k); err != nil {
					t.Fatal(err)
				}
				img := checkpointBytes(t, first, k)

				// ...restore into a fresh engine and finish the run.
				resumed := buildEngine(t, app.Build(), backend)
				if err := resumed.RunFromCheckpoint(img, iters); err != nil {
					t.Fatal(err)
				}
				got := checkpointBytes(t, resumed, iters)
				if !bytes.Equal(want, got) {
					t.Fatalf("resumed final state differs from uninterrupted run (%d vs %d bytes)", len(want), len(got))
				}
			})
		}
	}
}

// TestCheckpointCrossBackendRestore: a checkpoint taken under the VM
// restores under the interpreter (and vice versa) — the image holds only
// semantic state. The resumed interpreter run must match an uninterrupted
// interpreter run bit for bit.
func TestCheckpointCrossBackendRestore(t *testing.T) {
	const iters, k = 6, 2
	build := func() *ir.Program { return apps.FMRadio(4, 16) }

	ref := buildEngine(t, build(), BackendInterp)
	if err := ref.Run(iters); err != nil {
		t.Fatal(err)
	}
	want := checkpointBytes(t, ref, iters)

	vm := buildEngine(t, build(), BackendVM)
	if err := vm.RunInit(); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunSteady(k); err != nil {
		t.Fatal(err)
	}
	img := checkpointBytes(t, vm, k)

	interp := buildEngine(t, build(), BackendInterp)
	if err := interp.RunFromCheckpoint(img, iters); err != nil {
		t.Fatal(err)
	}
	if got := checkpointBytes(t, interp, iters); !bytes.Equal(want, got) {
		t.Fatal("cross-backend resume diverged from uninterrupted interpreter run")
	}
}

// TestCheckpointOutputIdentical: the observable output stream after a
// resume matches the uninterrupted run (not just internal state).
func TestCheckpointOutputIdentical(t *testing.T) {
	const iters, k = 8, 4
	build := func() (*ir.Program, *[]float64) {
		prog := apps.FMRadio(4, 16)
		pipe := prog.Top.(*ir.Pipeline)
		snk, got := SliceSink("cap")
		pipe.Children[len(pipe.Children)-1] = snk
		return prog, got
	}

	refProg, refGot := build()
	ref := buildEngine(t, refProg, BackendVM)
	if err := ref.Run(iters); err != nil {
		t.Fatal(err)
	}

	firstProg, firstGot := build()
	first := buildEngine(t, firstProg, BackendVM)
	if err := first.RunInit(); err != nil {
		t.Fatal(err)
	}
	if err := first.RunSteady(k); err != nil {
		t.Fatal(err)
	}
	img := checkpointBytes(t, first, k)

	resProg, resGot := build()
	resumed := buildEngine(t, resProg, BackendVM)
	if err := resumed.RunFromCheckpoint(img, iters); err != nil {
		t.Fatal(err)
	}
	combined := append(append([]float64(nil), *firstGot...), *resGot...)
	if len(combined) != len(*refGot) {
		t.Fatalf("resumed run produced %d items, reference %d", len(combined), len(*refGot))
	}
	for i := range combined {
		if combined[i] != (*refGot)[i] {
			t.Fatalf("output %d differs after resume: %v vs %v", i, combined[i], (*refGot)[i])
		}
	}
}

// TestCheckpointFingerprintMismatch: restoring against a different program
// is rejected with a clear error, not silent corruption.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	src := buildEngine(t, apps.FMRadio(4, 16), BackendVM)
	if err := src.Run(2); err != nil {
		t.Fatal(err)
	}
	img := checkpointBytes(t, src, 2)
	other := buildEngine(t, apps.BitonicSort(8), BackendVM)
	if _, err := other.RestoreCheckpoint(img); err == nil {
		t.Fatal("expected a fingerprint mismatch error")
	}
}

// TestCheckpointTruncatedRejected: every truncation of a valid image
// produces an error, never a panic.
func TestCheckpointTruncatedRejected(t *testing.T) {
	src := buildEngine(t, apps.FMRadio(4, 16), BackendVM)
	if err := src.Run(2); err != nil {
		t.Fatal(err)
	}
	img := checkpointBytes(t, src, 2)
	for cut := 0; cut < len(img); cut += 7 {
		e := buildEngine(t, apps.FMRadio(4, 16), BackendVM)
		if _, err := e.RestoreCheckpoint(img[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes restored without error", cut)
		}
	}
}

// TestCheckpointMessagingProgram: pending teleport messages and firing
// counters survive a checkpoint (the messaging engine path).
func TestCheckpointMessagingProgram(t *testing.T) {
	// Snapshot-based messaging programs live in snapshot_test.go; here we
	// reuse a plain engine and just assert pending-message round-tripping
	// through the encoder at the struct level via a synthetic message.
	e := buildEngine(t, apps.FMRadio(4, 16), BackendVM)
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	e.pending[0] = append(e.pending[0], &message{
		handler: "setGain", args: []float64{1.5, -2}, target: 42, upstream: true,
	})
	img := checkpointBytes(t, e, 1)
	fresh := buildEngine(t, apps.FMRadio(4, 16), BackendVM)
	if _, err := fresh.RestoreCheckpoint(img); err != nil {
		t.Fatal(err)
	}
	if len(fresh.pending[0]) != 1 {
		t.Fatalf("pending messages not restored: %v", fresh.pending[0])
	}
	m := fresh.pending[0][0]
	if m.handler != "setGain" || m.target != 42 || !m.upstream || len(m.args) != 2 || m.args[1] != -2 {
		t.Fatalf("message corrupted in round trip: %+v", m)
	}
}
