package exec

import (
	"sync"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/partition"
	"streamit/internal/sched"
)

// shardRig is one independently-compiled view of the rewritten program —
// what each distributed shard (and the coordinator) builds locally from
// the same source. Cross-build determinism of the rewrite is itself under
// test: node and edge IDs must line up across rigs.
type shardRig struct {
	g      *ir.Graph
	s      *sched.Schedule
	assign []int
	fs     []*ir.Filter
	outs   []*[]float64
}

func buildShardRig(t *testing.T, build func() *ir.Program, strat partition.Strategy, workers int) *shardRig {
	t.Helper()
	prog := build()
	var fs []*ir.Filter
	var outs []*[]float64
	prog.Top = swapSinks(prog.Top, &fs, &outs)
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildExecPlan(prog, g, s, partition.ExecPlanOptions{Strategy: strat, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pipelined {
		t.Fatalf("sharded execution needs a lockstep plan; strategy %s is pipelined", strat)
	}
	g2, err := ir.Flatten(plan.Program)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		t.Fatal(err)
	}
	return &shardRig{g: g2, s: s2, assign: plan.Assign(g2, s2), fs: fs, outs: outs}
}

// chanHooks wires two in-process sharded engines edge-to-edge with plain
// channels — the transport contract of RemoteHooks without any sockets.
type chanHooks struct {
	chs map[int]chan []float64
}

func (h *chanHooks) hooks() *RemoteHooks {
	return &RemoteHooks{
		Send: func(edge int, batch []float64, stop <-chan struct{}) error {
			select {
			case h.chs[edge] <- batch:
				return nil
			case <-stop:
				return ErrRemoteStopped
			}
		},
		Recv: func(edge int, stop <-chan struct{}) ([]float64, error) {
			select {
			case b := <-h.chs[edge]:
				return b, nil
			case <-stop:
				return nil, ErrRemoteStopped
			}
		},
	}
}

// TestMappedShardedBitIdentical splits a 4-worker coarse-data plan into
// two 2-worker shards (each an independently-compiled engine, exchanging
// cross-shard batches over channel hooks), drives them in lockstep
// epochs, and checks: sink outputs bit-identical to a single-process
// mapped engine and to a sequential engine; and the barrier image
// assembled from the two shards' exported slices byte-equal to the
// single-process engine's checkpoint at every barrier.
func TestMappedShardedBitIdentical(t *testing.T) {
	build := func() *ir.Program { return apps.FMRadio(2, 8) }
	const workers, perShard, iters, epoch = 4, 2, 8, 2
	strat := partition.StratCoarseData

	shardOf := func(w int) int { return w / perShard }
	rigs := []*shardRig{
		buildShardRig(t, build, strat, workers), // shard 0
		buildShardRig(t, build, strat, workers), // shard 1
	}
	single := buildShardRig(t, build, strat, workers)

	// Cross-build determinism: the fingerprinted rewrite must be stable.
	for i, r := range rigs {
		if got, want := graphFingerprint(r.g, r.s), graphFingerprint(single.g, single.s); got != want {
			t.Fatalf("shard %d compiled fingerprint %x, coordinator has %x", i, got, want)
		}
	}

	hooks := &chanHooks{chs: map[int]chan []float64{}}
	for _, e := range single.g.Edges {
		if shardOf(single.assign[e.Src.ID]) != shardOf(single.assign[e.Dst.ID]) {
			hooks.chs[e.ID] = make(chan []float64, DefaultQueueDepth)
		}
	}

	engines := make([]*MappedEngine, 2)
	for sh, r := range rigs {
		local := make([]bool, workers)
		for w := 0; w < workers; w++ {
			local[w] = shardOf(w) == sh
		}
		me, err := NewMappedOpts(r.g, r.s, r.assign, workers, Options{
			LocalWorkers: local, Remote: hooks.hooks(), Watchdog: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !me.Sharded() {
			t.Fatal("engine with LocalWorkers should report Sharded")
		}
		if err := me.Prepare(); err != nil {
			t.Fatal(err)
		}
		engines[sh] = me
	}

	ms, err := NewMappedOpts(single.g, single.s, single.assign, workers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Prepare(); err != nil {
		t.Fatal(err)
	}

	for done := 0; done < iters; done += epoch {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for sh, me := range engines {
			wg.Add(1)
			go func(sh int, me *MappedEngine) {
				defer wg.Done()
				errs[sh] = me.StepEpoch(epoch)
			}(sh, me)
		}
		wg.Wait()
		for sh, err := range errs {
			if err != nil {
				t.Fatalf("shard %d epoch at %d: %v", sh, done, err)
			}
		}
		if err := ms.StepEpoch(epoch); err != nil {
			t.Fatalf("single-process epoch at %d: %v", done, err)
		}

		parts := make([]*ShardState, 2)
		for sh, me := range engines {
			p, err := me.ExportShard()
			if err != nil {
				t.Fatal(err)
			}
			if p.Iteration != int64(done+epoch) {
				t.Fatalf("shard %d exported at iteration %d, want %d", sh, p.Iteration, done+epoch)
			}
			parts[sh] = p
		}
		img, err := AssembleShardImage(single.g, single.s, int64(done+epoch), parts)
		if err != nil {
			t.Fatalf("assemble at %d: %v", done+epoch, err)
		}
		var want sliceBuffer
		if err := ms.WriteCheckpoint(&want, int64(done+epoch)); err != nil {
			t.Fatal(err)
		}
		if string(img) != string(want) {
			t.Fatalf("assembled image at iteration %d differs from the single-process checkpoint (%d vs %d bytes)",
				done+epoch, len(img), len(want))
		}

		// The assembled image restores into a fresh sequential engine over
		// an independently-compiled graph — the interchange path a shard
		// migration rides.
		if done+epoch == iters {
			seq, err := NewFromGraph(single.g, single.s)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := seq.RestoreCheckpoint(img); err != nil {
				t.Fatalf("sequential restore of assembled image: %v", err)
			}
		}
	}

	// Each sink is owned by exactly one shard; its owner's collector must
	// match the single-process engine's bit for bit.
	for i := range single.fs {
		n := single.g.FilterNode[single.fs[i]]
		if n == nil {
			t.Fatalf("collector %d missing from rewritten graph", i)
		}
		owner := shardOf(single.assign[n.ID])
		got, want := *rigs[owner].outs[i], *single.outs[i]
		if len(got) != len(want) {
			t.Fatalf("sink %d: shard %d captured %d items, single-process %d", i, owner, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("sink %d item %d: shard %v, single-process %v", i, j, got[j], want[j])
			}
		}
	}

	// Sharded engines must refuse full checkpoints mid-run: they hold only
	// their own partitions' state.
	var buf sliceBuffer
	if err := engines[0].WriteCheckpoint(&buf, iters); err == nil {
		t.Fatal("WriteCheckpoint on an advanced shard should fail")
	}
}

// TestMappedShardedRestore rolls a pair of sharded engines back to an
// assembled mid-run image and replays: outputs after the rollback must
// re-converge bit-identically (the distributed recovery path in miniature).
func TestMappedShardedRestore(t *testing.T) {
	build := func() *ir.Program { return apps.FMRadio(2, 8) }
	const workers, perShard, iters, epoch = 4, 2, 6, 2
	strat := partition.StratCoarseData
	shardOf := func(w int) int { return w / perShard }

	single := buildShardRig(t, build, strat, workers)
	rigs := []*shardRig{
		buildShardRig(t, build, strat, workers),
		buildShardRig(t, build, strat, workers),
	}
	hooks := &chanHooks{chs: map[int]chan []float64{}}
	for _, e := range single.g.Edges {
		if shardOf(single.assign[e.Src.ID]) != shardOf(single.assign[e.Dst.ID]) {
			hooks.chs[e.ID] = make(chan []float64, DefaultQueueDepth)
		}
	}
	engines := make([]*MappedEngine, 2)
	for sh, r := range rigs {
		local := make([]bool, workers)
		for w := 0; w < workers; w++ {
			local[w] = shardOf(w) == sh
		}
		me, err := NewMappedOpts(r.g, r.s, r.assign, workers, Options{
			LocalWorkers: local, Remote: hooks.hooks(), Watchdog: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := me.Prepare(); err != nil {
			t.Fatal(err)
		}
		engines[sh] = me
	}

	step := func(n int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for sh, me := range engines {
			wg.Add(1)
			go func(sh int, me *MappedEngine) {
				defer wg.Done()
				errs[sh] = me.StepEpoch(n)
			}(sh, me)
		}
		wg.Wait()
		for sh, err := range errs {
			if err != nil {
				t.Fatalf("shard %d: %v", sh, err)
			}
		}
	}

	step(epoch) // to iteration 2
	parts := make([]*ShardState, 2)
	for sh, me := range engines {
		p, err := me.ExportShard()
		if err != nil {
			t.Fatal(err)
		}
		parts[sh] = p
	}
	img, err := AssembleShardImage(single.g, single.s, epoch, parts)
	if err != nil {
		t.Fatal(err)
	}

	step(iters - epoch) // to the end; collectors now hold the full run
	var wantOuts [][]float64
	for _, r := range rigs {
		for _, o := range r.outs {
			wantOuts = append(wantOuts, append([]float64(nil), *o...))
		}
	}

	// Roll both shards back to iteration 2 and replay. Collectors re-run,
	// so reset them first.
	for _, r := range rigs {
		for _, o := range r.outs {
			*o = nil
		}
	}
	for sh, me := range engines {
		it, err := me.RestoreCheckpoint(img)
		if err != nil {
			t.Fatalf("shard %d restore: %v", sh, err)
		}
		if it != epoch {
			t.Fatalf("shard %d restored to iteration %d, want %d", sh, it, epoch)
		}
	}
	step(iters - epoch)
	var gotOuts [][]float64
	for _, r := range rigs {
		for _, o := range r.outs {
			gotOuts = append(gotOuts, append([]float64(nil), *o...))
		}
	}
	for i := range wantOuts {
		// The replay covers iterations 2..6; the original capture covers
		// 0..6 — the replay must equal the tail.
		want := wantOuts[i][len(wantOuts[i])-len(gotOuts[i]):]
		for j := range want {
			if gotOuts[i][j] != want[j] {
				t.Fatalf("sink slice %d item %d: replay %v, original %v", i, j, gotOuts[i][j], want[j])
			}
		}
	}
}
