package exec

import (
	"strings"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/wfunc"
)

// runLengthDecoder is a genuinely dynamic-rate filter: it pops a (count,
// value) pair and pushes count copies of value.
func runLengthDecoder() *ir.Filter {
	b := wfunc.NewKernel("RLDecode", 2, 2, 1)
	b.Dynamic()
	cnt := b.Local("cnt")
	v := b.Local("v")
	i := b.Local("i")
	b.WorkBody(
		wfunc.Set(cnt, wfunc.PopE()),
		wfunc.Set(v, wfunc.PopE()),
		wfunc.ForUp(i, wfunc.Ci(0), cnt, wfunc.Push1(v)),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

// pairSource emits (count, value) pairs: (1,10), (2,20), (3,30), ...
func pairSource() *ir.Filter {
	b := wfunc.NewKernel("Pairs", 0, 0, 2)
	n := b.Field("n", 0)
	b.WorkBody(
		wfunc.Push1(wfunc.AddX(wfunc.Bin(wfunc.Mod, n, wfunc.C(3)), wfunc.C(1))),
		wfunc.Push1(wfunc.MulX(wfunc.AddX(wfunc.Bin(wfunc.Mod, n, wfunc.C(3)), wfunc.C(1)), wfunc.C(10))),
		wfunc.SetF(n, wfunc.AddX(n, wfunc.C(1))),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeVoid, Out: ir.TypeFloat}
}

// TestDynamicRunLengthDecoder: the dynamic engine executes a variable-rate
// program and produces the exact expansion.
func TestDynamicRunLengthDecoder(t *testing.T) {
	snk, got := SliceSink("out")
	prog := &ir.Program{Name: "rle", Top: ir.Pipe("main", pairSource(), runLengthDecoder(), snk)}
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(12); err != nil {
		t.Fatal(err)
	}
	// Pairs (1,10),(2,20),(3,30) repeat: expansion 10, 20,20, 30,30,30, ...
	want := []float64{10, 20, 20, 30, 30, 30, 10, 20, 20, 30, 30, 30}
	if len(*got) < len(want) {
		t.Fatalf("got %d items, want >= %d", len(*got), len(want))
	}
	for i := range want {
		if (*got)[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, (*got)[i], want[i])
		}
	}
}

// TestDynamicRejectedByStaticScheduler: the static pipeline refuses
// dynamic-rate filters with a clear error.
func TestDynamicRejectedByStaticScheduler(t *testing.T) {
	snk, _ := SliceSink("out")
	prog := &ir.Program{Name: "rle", Top: ir.Pipe("main", pairSource(), runLengthDecoder(), snk)}
	if _, err := New(prog); err == nil {
		t.Fatal("static engine should reject dynamic rates")
	}
}

// TestDynamicMatchesSequentialOnStaticProgram: for a static-rate program,
// the dynamic engine produces the same output stream (Kahn determinism).
func TestDynamicMatchesSequentialOnStaticProgram(t *testing.T) {
	build := func() (*ir.Program, *[]float64) {
		prog := apps.FMRadio(4, 16)
		pipe := prog.Top.(*ir.Pipeline)
		snk, got := SliceSink("cap")
		pipe.Children[len(pipe.Children)-1] = snk
		return prog, got
	}
	seqProg, seqGot := build()
	seqOut, err := RunCollect(seqProg, 60, seqGot)
	if err != nil {
		t.Fatal(err)
	}
	dynProg, dynGot := build()
	g, err := ir.Flatten(dynProg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(40); err != nil {
		t.Fatal(err)
	}
	n := 40
	if len(seqOut) < n || len(*dynGot) < n {
		t.Fatalf("too few outputs: seq %d dyn %d", len(seqOut), len(*dynGot))
	}
	for i := 0; i < n; i++ {
		if seqOut[i] != (*dynGot)[i] {
			t.Fatalf("output %d: sequential %v, dynamic %v", i, seqOut[i], (*dynGot)[i])
		}
	}
}

// TestDynamicFeedbackLoop: dynamic execution handles feedback loops (the
// per-item channels interleave finely enough).
func TestDynamicFeedbackLoop(t *testing.T) {
	adder := func() *ir.Filter {
		b := wfunc.NewKernel("adder", 2, 2, 1)
		b.WorkBody(wfunc.Push1(wfunc.AddX(wfunc.PopE(), wfunc.PopE())))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	snk, got := SliceSink("out")
	prog := &ir.Program{Name: "fb", Top: ir.Pipe("main",
		SliceSource("ones", []float64{1}),
		&ir.FeedbackLoop{
			Name: "acc", Join: ir.RoundRobin(1, 1), Body: adder,
			Split: ir.Duplicate(), Delay: 1,
		},
		snk,
	)}
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5} // running sum of ones
	for i := range want {
		if (*got)[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, (*got)[i], want[i])
		}
	}
}

// TestDynamicReportsNodeErrors: a runtime fault inside a node surfaces as
// an error naming the node rather than hanging the network.
func TestDynamicReportsNodeErrors(t *testing.T) {
	bad := func() *ir.Filter {
		b := wfunc.NewKernel("oob", 1, 1, 1)
		arr := b.FieldArray("a", 2)
		b.WorkBody(
			// Index 5 into a 2-element array: runtime error.
			wfunc.Push1(wfunc.FIdx(arr, wfunc.AddX(wfunc.PopE(), wfunc.C(5)))),
		)
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	snk, _ := SliceSink("snk")
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main",
		SliceSource("src", []float64{1}), bad, snk)}
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Run(10)
	if err == nil {
		t.Fatal("expected node error")
	}
	if !containsStr(err.Error(), "oob") {
		t.Errorf("error should name the node: %v", err)
	}
}

func containsStr(s, sub string) bool {
	return strings.Contains(s, sub)
}
