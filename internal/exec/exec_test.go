package exec

import (
	"math"
	"strings"
	"testing"

	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/wfunc"
)

func gainFilter(name string, g float64) *ir.Filter {
	b := wfunc.NewKernel(name, 1, 1, 1)
	b.WorkBody(wfunc.Push1(wfunc.MulX(wfunc.PopE(), wfunc.C(g))))
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

func firFilter(name string, weights []float64) *ir.Filter {
	n := len(weights)
	b := wfunc.NewKernel(name, n, 1, 1)
	w := b.FieldArray("w", n, weights...)
	i := b.Local("i")
	sum := b.Local("sum")
	b.WorkBody(
		wfunc.Set(sum, wfunc.C(0)),
		wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(n),
			wfunc.Set(sum, wfunc.AddX(sum, wfunc.MulX(wfunc.PeekX(i), wfunc.FIdx(w, i))))),
		wfunc.Pop1(),
		wfunc.Push1(sum),
	)
	return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
}

func TestPipelineValues(t *testing.T) {
	src := SliceSource("src", []float64{1, 2, 3, 4})
	snk, got := SliceSink("snk")
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, gainFilter("g", 10), snk)}
	out, err := RunCollect(prog, 8, got)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 40, 10, 20, 30, 40}
	if len(out) != len(want) {
		t.Fatalf("got %d items, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestFIRThroughEngine(t *testing.T) {
	src := SliceSource("src", []float64{1, 0, 0, 0, 0, 0, 0, 0})
	snk, got := SliceSink("snk")
	weights := []float64{0.5, 0.25, 0.125}
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, firFilter("fir", weights), snk)}
	out, err := RunCollect(prog, 6, got)
	if err != nil {
		t.Fatal(err)
	}
	// Impulse at position 0 every 8 samples: the impulse response appears
	// reversed? No: out[i] = sum_j in[i+j]*w[j], an anticausal correlation;
	// impulse at 0 shows w[0] at out[0] only (in[0+0]=1).
	if out[0] != 0.5 {
		t.Errorf("out[0] = %v, want 0.5", out[0])
	}
	if out[1] != 0 {
		t.Errorf("out[1] = %v, want 0", out[1])
	}
	// The impulse at index 8 is seen by out[5] looking ahead? out[5] peeks
	// in[5..7] = 0. Check steady repetition instead: out[6] peeks in[6..8],
	// in[8]=1 (next cycle) -> w[2]*1.
	if len(out) >= 7 && out[6] != 0.125 {
		t.Errorf("out[6] = %v, want 0.125", out[6])
	}
}

func TestRoundRobinSplitJoinValues(t *testing.T) {
	src := SliceSource("src", []float64{1, 2, 3, 4, 5, 6})
	snk, got := SliceSink("snk")
	sj := ir.SJ("sj", ir.RoundRobin(1, 1), ir.RoundRobin(1, 1),
		gainFilter("a", 10), gainFilter("b", 100))
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, sj, snk)}
	out, err := RunCollect(prog, 3, got)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 200, 30, 400, 50, 600}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestWeightedRoundRobinOrdering(t *testing.T) {
	// WRR(2,1) split and WRR(1,2) join: check exact item routing.
	src := SliceSource("src", []float64{1, 2, 3, 4, 5, 6})
	snk, got := SliceSink("snk")
	sj := ir.SJ("sj", ir.RoundRobin(2, 1), ir.RoundRobin(1, 2),
		// Branch a gets items 1,2 then 4,5; halves rate 2->1.
		func() *ir.Filter {
			b := wfunc.NewKernel("pairsum", 2, 2, 1)
			b.WorkBody(wfunc.Push1(wfunc.AddX(wfunc.PopE(), wfunc.PopE())))
			return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
		}(),
		// Branch b gets 3 then 6; doubles rate 1->2.
		func() *ir.Filter {
			b := wfunc.NewKernel("dup2", 1, 1, 2)
			x := b.Local("x")
			b.WorkBody(wfunc.Set(x, wfunc.PopE()), wfunc.Push1(x), wfunc.Push1(x))
			return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
		}(),
	)
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, sj, snk)}
	out, err := RunCollect(prog, 2, got)
	if err != nil {
		t.Fatal(err)
	}
	// Join WRR(1,2): a:3 (=1+2), b:3,3, a:9 (=4+5), b:6,6.
	want := []float64{3, 3, 3, 9, 6, 6}
	for i := range want {
		if i < len(out) && out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestDuplicateSplitValues(t *testing.T) {
	src := SliceSource("src", []float64{1, 2})
	snk, got := SliceSink("snk")
	sj := ir.SJ("sj", ir.Duplicate(), ir.RoundRobin(1, 1),
		gainFilter("x1", 1), gainFilter("x3", 3))
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, sj, snk)}
	out, err := RunCollect(prog, 2, got)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 2, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestFeedbackLoopRunningSum(t *testing.T) {
	// Running sum via feedback: joiner RR(1,1) merges input with loop;
	// adder sums pairs; duplicate splitter sends result out and back.
	src := SliceSource("src", []float64{1, 2, 3, 4, 5})
	snk, got := SliceSink("snk")
	adder := func() *ir.Filter {
		b := wfunc.NewKernel("adder", 2, 2, 1)
		b.WorkBody(wfunc.Push1(wfunc.AddX(wfunc.PopE(), wfunc.PopE())))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	fl := &ir.FeedbackLoop{
		Name:  "acc",
		Join:  ir.RoundRobin(1, 1),
		Body:  adder,
		Split: ir.Duplicate(),
		Delay: 1, // initPath(0) = 0
	}
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, fl, snk)}
	out, err := RunCollect(prog, 5, got)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 6, 10, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v (running sum)", i, out[i], want[i])
		}
	}
}

func TestFeedbackDoubler(t *testing.T) {
	// Geometric growth through feedback: body adds the external zero
	// stream to twice the fed-back value. Seed 1 -> outputs 2, 4, 8, ...
	src := SliceSource("zeros", []float64{0})
	snk, got := SliceSink("snk")
	double := func() *ir.Filter {
		b := wfunc.NewKernel("double", 2, 2, 1)
		b.WorkBody(wfunc.Push1(wfunc.AddX(wfunc.PopE(), wfunc.MulX(wfunc.PopE(), wfunc.C(2)))))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	fl := &ir.FeedbackLoop{
		Name:     "growloop",
		Join:     ir.RoundRobin(1, 1),
		Body:     double,
		Split:    ir.Duplicate(),
		Delay:    1,
		InitPath: func(i int) float64 { return 1 },
	}
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, fl, snk)}
	out, err := RunCollect(prog, 5, got)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 8, 16, 32}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestPeekingInitSchedule(t *testing.T) {
	// Moving average peek 4 pop 1: first output averages items 0..3.
	src := RampSource("ramp")
	snk, got := SliceSink("snk")
	avg := func() *ir.Filter {
		b := wfunc.NewKernel("avg4", 4, 1, 1)
		i := b.Local("i")
		s := b.Local("s")
		b.WorkBody(
			wfunc.ForUp(i, wfunc.Ci(0), wfunc.Ci(4),
				wfunc.Set(s, wfunc.AddX(s, wfunc.PeekX(i)))),
			wfunc.Pop1(),
			wfunc.Push1(wfunc.DivX(s, wfunc.C(4))),
		)
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, avg, snk)}
	out, err := RunCollect(prog, 5, got)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		want := (float64(i) + float64(i+1) + float64(i+2) + float64(i+3)) / 4
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestStatefulAccumulator(t *testing.T) {
	src := SliceSource("src", []float64{1, 1, 1})
	snk, got := SliceSink("snk")
	acc := func() *ir.Filter {
		b := wfunc.NewKernel("acc", 1, 1, 1)
		a := b.Field("a", 0)
		b.WorkBody(wfunc.SetF(a, wfunc.AddX(a, wfunc.PopE())), wfunc.Push1(a))
		return &ir.Filter{Kernel: b.Build(), In: ir.TypeFloat, Out: ir.TypeFloat}
	}()
	prog := &ir.Program{Name: "p", Top: ir.Pipe("main", src, acc, snk)}
	out, err := RunCollect(prog, 3, got)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

// TestPanicBecomesError: a buggy native kernel's panic surfaces as an
// error naming the node, on both the sequential and parallel backends.
func TestPanicBecomesError(t *testing.T) {
	buggy := func() *ir.Filter {
		b := wfunc.NewKernel("buggy", 1, 1, 1)
		b.WorkBody(wfunc.Push1(wfunc.PopE()))
		k := b.Build()
		return &ir.Filter{Kernel: k, In: ir.TypeFloat, Out: ir.TypeFloat,
			WorkFn: func(in, out wfunc.Tape, st *wfunc.State) {
				panic("kaboom")
			}}
	}
	mk := func() *ir.Program {
		snk, _ := SliceSink("snk")
		return &ir.Program{Name: "p", Top: ir.Pipe("main",
			SliceSource("src", []float64{1}), buggy(), snk)}
	}
	e, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1); err == nil || !strings.Contains(err.Error(), "buggy") {
		t.Errorf("sequential: want node-named error, got %v", err)
	}

	prog := mk()
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallel(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.Run(2); err == nil || !strings.Contains(err.Error(), "buggy") {
		t.Errorf("parallel: want node-named error, got %v", err)
	}
}
