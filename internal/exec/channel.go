// Package exec is the sequential StreamIt runtime. It executes a flattened
// stream graph: filters run their IL work functions (or native Go kernels)
// against ring-buffer channels; splitters and joiners route values; teleport
// messages are delivered at the tape positions dictated by the
// information-wavefront semantics, and MAX_LATENCY directives constrain the
// dynamic schedule.
package exec

import "fmt"

// channel is a growable ring buffer of float64 items implementing the
// wfunc.Tape contract for its consumer (Peek/Pop) and producer (Push).
// It also tracks the tape counters of the paper's semantics: pushed is
// n(t), popped is p(t). Capacity is kept a power of two so position
// wrapping is a mask, not a division — Peek/Pop/Push are the innermost
// operations of every backend.
type channel struct {
	buf    []float64
	mask   int
	head   int
	count  int
	pushed int64
	popped int64
}

func newChannel(capacity int) *channel {
	n := 4
	for n < capacity {
		n *= 2
	}
	return &channel{buf: make([]float64, n), mask: n - 1}
}

// Peek returns the item i positions from the read end.
func (c *channel) Peek(i int) float64 {
	if i < 0 || i >= c.count {
		panic(tapeFault{op: "peek", detail: fmt.Sprintf("peek(%d) with %d items buffered", i, c.count)})
	}
	return c.buf[(c.head+i)&c.mask]
}

// Pop consumes the next item.
func (c *channel) Pop() float64 {
	if c.count == 0 {
		panic(tapeFault{op: "pop", detail: "pop on empty channel"})
	}
	v := c.buf[c.head]
	c.head = (c.head + 1) & c.mask
	c.count--
	c.popped++
	return v
}

// Push appends an item, growing the buffer when full.
func (c *channel) Push(v float64) {
	if c.count == len(c.buf) {
		c.grow()
	}
	c.buf[(c.head+c.count)&c.mask] = v
	c.count++
	c.pushed++
}

func (c *channel) grow() {
	nb := make([]float64, 2*len(c.buf))
	for i := 0; i < c.count; i++ {
		nb[i] = c.buf[(c.head+i)&c.mask]
	}
	c.buf = nb
	c.mask = len(nb) - 1
	c.head = 0
}

// Len returns the number of buffered items.
func (c *channel) Len() int { return c.count }

// clone returns an independent copy (supervised-rollback save point).
func (c *channel) clone() *channel {
	cp := *c
	cp.buf = append([]float64(nil), c.buf...)
	return &cp
}

// restoreFrom rolls the channel back to a clone taken earlier.
func (c *channel) restoreFrom(saved *channel) {
	c.buf = append(c.buf[:0], saved.buf...)
	c.mask = saved.mask
	c.head = saved.head
	c.count = saved.count
	c.pushed = saved.pushed
	c.popped = saved.popped
}
