package exec

import (
	"math"
	"testing"

	"streamit/internal/apps"
	"streamit/internal/ir"
	"streamit/internal/sched"
)

// buildBoth compiles a program and returns sequential and parallel engines
// over independent graphs (filters are single-appearance, so the program
// is built twice by the caller).
func runSequentialOutputs(t *testing.T, prog *ir.Program, iters int) []float64 {
	t.Helper()
	pipe := prog.Top.(*ir.Pipeline)
	snk, got := SliceSink("seqsink")
	pipe.Children[len(pipe.Children)-1] = snk
	out, err := RunCollect(prog, iters, got)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func runParallelOutputs(t *testing.T, prog *ir.Program, iters int) []float64 {
	t.Helper()
	pipe := prog.Top.(*ir.Pipeline)
	snk, got := SliceSink("parsink")
	pipe.Children[len(pipe.Children)-1] = snk
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallel(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.Run(iters); err != nil {
		t.Fatal(err)
	}
	return *got
}

// TestParallelMatchesSequential runs several benchmarks on both backends
// and compares the exact output streams.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name  string
		build func() *ir.Program
		iters int
	}{
		{"FMRadio", func() *ir.Program { return apps.FMRadio(4, 16) }, 20},
		{"FilterBank", func() *ir.Program { return apps.FilterBank(4, 16) }, 12},
		{"BitonicSort", func() *ir.Program { return apps.BitonicSort(8) }, 10},
		{"TDE", func() *ir.Program { return apps.TDE(12, 2) }, 6},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seq := runSequentialOutputs(t, c.build(), c.iters*4)
			par := runParallelOutputs(t, c.build(), c.iters)
			if len(par) == 0 {
				t.Fatal("parallel backend produced no output")
			}
			n := len(par)
			if len(seq) < n {
				n = len(seq)
			}
			if n == 0 {
				t.Fatal("nothing to compare")
			}
			for i := 0; i < n; i++ {
				if math.Abs(seq[i]-par[i]) > 1e-9 {
					t.Fatalf("output %d: sequential %v, parallel %v", i, seq[i], par[i])
				}
			}
		})
	}
}

// TestParallelRejectsMessagingAndLoops: programs needing global wavefront
// ordering are routed to the sequential engine.
func TestParallelRejectsMessagingAndLoops(t *testing.T) {
	prog := apps.FreqHoppingRadio(true)
	g, err := ir.Flatten(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewParallel(g, s); err == nil {
		t.Fatal("expected rejection of teleport messaging")
	}

	loopProg := &ir.Program{Name: "loop", Top: ir.Pipe("main",
		apps.Source("s"),
		&ir.FeedbackLoop{
			Name: "fl", Join: ir.RoundRobin(1, 1),
			Body:  apps.Adder("add", 2),
			Split: ir.Duplicate(), Delay: 1,
		},
		apps.Sink("k", 1),
	)}
	g2, err := ir.Flatten(loopProg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sched.Compute(g2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewParallel(g2, s2); err == nil {
		t.Fatal("expected rejection of feedback loops")
	}
}

// BenchmarkParallelVsSequentialTDE measures real host-machine speedup of
// the goroutine backend on a compute-heavy pipeline.
func BenchmarkParallelVsSequentialTDE(b *testing.B) {
	b.Run("sequential", func(b *testing.B) {
		e, err := New(apps.TDE(24, 3))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.RunInit(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.RunSteady(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		prog := apps.TDE(24, 3)
		g, err := ir.Flatten(prog)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sched.Compute(g)
		if err != nil {
			b.Fatal(err)
		}
		pe, err := NewParallel(g, s)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if err := pe.Run(b.N); err != nil {
			b.Fatal(err)
		}
	})
}

// TestQuickParallelMatchesSequentialRandom: randomized rate/structure
// pipelines produce identical outputs on both backends.
func TestQuickParallelMatchesSequentialRandom(t *testing.T) {
	mk := func(name string, peek, pop, push int, scale float64) *ir.Filter {
		b := wfuncKernel(name, peek, pop, push, scale)
		in, out := ir.TypeFloat, ir.TypeFloat
		if pop == 0 && peek == 0 {
			in = ir.TypeVoid
		}
		if push == 0 {
			out = ir.TypeVoid
		}
		return &ir.Filter{Kernel: b, In: in, Out: out}
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := newRand(seed)
		build := func() *ir.Program {
			rng := newRand(seed) // identical structure for both builds
			var chain []ir.Stream
			chain = append(chain, rampFilter("src"))
			depth := rng.Intn(3) + 1
			for d := 0; d < depth; d++ {
				pop := rng.Intn(2) + 1
				push := rng.Intn(2) + 1
				peek := pop + rng.Intn(3)
				chain = append(chain, mk(letter("f", d), peek, pop, push, 0.5+float64(d)))
			}
			if rng.Intn(2) == 0 {
				split := ir.SJSpec(ir.RoundRobin(1, 1))
				if rng.Intn(2) == 0 {
					split = ir.Duplicate()
				}
				chain = append(chain, ir.SJ("sj", split, ir.RoundRobin(1, 1),
					mk("ba", 1, 1, 1, 2), mk("bb", 2, 1, 1, 3)))
			}
			chain = append(chain, mk("snk", 2, 2, 0, 0))
			return &ir.Program{Name: "rnd", Top: ir.Pipe("main", chain...)}
		}
		_ = rng
		seq := runSequentialOutputs(t, build(), 40)
		par := runParallelOutputs(t, build(), 10)
		n := len(par)
		if len(seq) < n {
			n = len(seq)
		}
		if n == 0 {
			t.Fatalf("seed %d: no outputs", seed)
		}
		for i := 0; i < n; i++ {
			if math.Abs(seq[i]-par[i]) > 1e-9 {
				t.Fatalf("seed %d: output %d differs: %v vs %v", seed, i, seq[i], par[i])
			}
		}
	}
}
