package exec

import (
	"fmt"
	"sync/atomic"
	"time"

	"streamit/internal/ir"
	"streamit/internal/sched"
	"streamit/internal/sdep"
	"streamit/internal/wfunc"
)

// Coarse-grained software pipelining on the mapped engine.
//
// A pipelined plan (Options.Stages) gives every node a stage level; the
// engine turns levels into stage offsets, stage = level * StageBatch, and
// runs macro-cycles instead of lockstep iterations. At cycle t a node with
// stage s fires its logical iteration t-s (once it is gated: s <= t <
// s+segIters), so a segment of I iterations takes I + maxStage cycles —
// the first maxStage cycles are the prologue (downstream stages idle), the
// last maxStage the epilogue (upstream stages done). Producers therefore
// work StageBatch cycles ahead of their consumers per level of separation,
// which is what lets each worker run K=StageBatch iterations of its nodes
// between cross-worker transfers: output is staged locally and flushed as
// one batch every K gated cycles (and at the segment's last firing), and
// the consumer performs one matching blocking receive at the same cycle
// index. Every cross-worker edge spans at least one level, so the K-cycle
// skew guarantees the flushed data always arrives before the consumer
// needs it, and the matched flush/receive schedule keeps channels drained
// at every epoch barrier.
//
// Feedback loops and teleport messaging cannot tolerate pipeline skew
// between their members — a loop interleaves at firing granularity and
// sdep delivery windows are relative to live progress counters — so the
// partitioner wraps each of them in a stage cluster (StageClusters): all
// members share one worker and one stage, and fire through a data-driven
// loop that mirrors the sequential engine's dynamic scheduler, including
// constraint gating and message delivery, which keeps outputs
// bit-identical to the sequential Engine.

// DefaultStageBatch is the pipelined flush interval in macro-cycles: how
// many iterations each stage runs ahead of the next, and how many
// iterations' worth of items one cross-worker transfer carries.
const DefaultStageBatch = 8

// swpState is the software-pipelining runtime of a mapped engine.
type swpState struct {
	levels    []int // per-node stage level
	numLevels int
	batch     int64 // K: flush interval and per-level stage distance
	clusters  [][]int
	clusterOf []int  // node ID -> cluster index, -1 for singletons
	msgNode   []bool // fires through the messaging-aware cluster path
	sends     []bool // filter's work function contains Send statements

	// Messaging runtime; pending/partial are nil when the graph has none.
	constraints []constraint
	calc        *sdep.Calc
	pending     [][]*message
	partial     []int64 // mid-firing progress-tape movement, by node ID

	// Segment position: the engine runs segIters logical iterations per
	// segment (one Run call), with base iterations retired by earlier
	// segments (checkpointed restarts).
	base     int64
	segIters int64
}

// maxStage is the last stage offset: the prologue/epilogue length.
func (sw *swpState) maxStage() int64 { return int64(sw.numLevels-1) * sw.batch }

// completed converts a cycle position into fully-retired logical
// iterations (those every stage has finished).
func (sw *swpState) completed(cycle int64) int64 {
	done := cycle - sw.maxStage()
	if done < 0 {
		done = 0
	}
	if done > sw.segIters {
		done = sw.segIters
	}
	return done
}

// newSWPState validates a pipelined configuration against the graph and
// assignment: complete non-negative levels, clusters whole on one worker
// at one level (feedback edges inside one cluster), cross-cluster forward
// edges strictly increasing in level, and the full messaging hull inside
// a single cluster.
func newSWPState(g *ir.Graph, s *sched.Schedule, opts Options, assign []int) (*swpState, error) {
	n := len(g.Nodes)
	if len(opts.Stages) != n {
		return nil, fmt.Errorf("exec: stage map covers %d of %d nodes", len(opts.Stages), n)
	}
	batch := opts.StageBatch
	if batch == 0 {
		batch = DefaultStageBatch
	}
	if batch < 1 {
		return nil, fmt.Errorf("exec: stage batch %d out of range (want >= 1 cycles)", opts.StageBatch)
	}
	sw := &swpState{
		levels:    append([]int(nil), opts.Stages...),
		batch:     int64(batch),
		clusterOf: make([]int, n),
		msgNode:   make([]bool, n),
		sends:     make([]bool, n),
	}
	for id, lv := range sw.levels {
		if lv < 0 {
			return nil, fmt.Errorf("exec: node %d has negative stage level %d", id, lv)
		}
		if lv+1 > sw.numLevels {
			sw.numLevels = lv + 1
		}
	}
	for i := range sw.clusterOf {
		sw.clusterOf[i] = -1
	}
	for ci, members := range opts.StageClusters {
		if len(members) == 0 {
			return nil, fmt.Errorf("exec: stage cluster %d is empty", ci)
		}
		for _, id := range members {
			if id < 0 || id >= n {
				return nil, fmt.Errorf("exec: stage cluster %d names node %d of %d", ci, id, n)
			}
			if sw.clusterOf[id] >= 0 {
				return nil, fmt.Errorf("exec: node %d appears in stage clusters %d and %d", id, sw.clusterOf[id], ci)
			}
			sw.clusterOf[id] = ci
			if assign[id] != assign[members[0]] {
				return nil, fmt.Errorf("exec: stage cluster %d splits across workers %d and %d", ci, assign[members[0]], assign[id])
			}
			if sw.levels[id] != sw.levels[members[0]] {
				return nil, fmt.Errorf("exec: stage cluster %d spans levels %d and %d", ci, sw.levels[members[0]], sw.levels[id])
			}
		}
		sw.clusters = append(sw.clusters, append([]int(nil), members...))
	}
	for _, e := range g.Edges {
		if e.Back {
			if sw.clusterOf[e.Src.ID] < 0 || sw.clusterOf[e.Src.ID] != sw.clusterOf[e.Dst.ID] {
				return nil, fmt.Errorf("exec: feedback edge %s must sit inside one stage cluster", e)
			}
			continue
		}
		sameCluster := sw.clusterOf[e.Src.ID] >= 0 && sw.clusterOf[e.Src.ID] == sw.clusterOf[e.Dst.ID]
		if sameCluster {
			continue
		}
		if sw.levels[e.Dst.ID] <= sw.levels[e.Src.ID] {
			return nil, fmt.Errorf("exec: edge %s does not advance the pipeline stage (level %d -> %d)",
				e, sw.levels[e.Src.ID], sw.levels[e.Dst.ID])
		}
	}

	hasMsg := len(g.Portals) > 0 || len(g.Constraints) > 0
	for _, nd := range g.Nodes {
		if nd.Kind != ir.NodeFilter || nd.Filter.WorkFn != nil {
			continue
		}
		if k := nd.Filter.Kernel; k != nil && k.Work != nil && wfunc.SendsMessages(k.Work) {
			sw.sends[nd.ID] = true
			hasMsg = true
		}
	}
	if hasMsg {
		cs, err := deriveConstraints(g)
		if err != nil {
			return nil, err
		}
		sw.constraints = cs
		sw.calc = sdep.NewCalc(g, s)
		sw.pending = make([][]*message, n)
		sw.partial = make([]int64, n)
		// Every messaging endpoint fires through the cluster path (message
		// delivery and constraint gating), and skew between endpoints
		// would shift delivery windows, so they must share one cluster.
		hull := -1
		mark := func(nd *ir.Node) error {
			if nd == nil {
				return nil
			}
			sw.msgNode[nd.ID] = true
			ci := sw.clusterOf[nd.ID]
			switch {
			case hull < 0:
				hull = ci
			case ci != hull:
				return fmt.Errorf("exec: messaging endpoint %s is outside the pipeline's messaging stage cluster", nd.Name)
			}
			return nil
		}
		for id, snd := range sw.sends {
			if snd {
				if err := mark(g.Nodes[id]); err != nil {
					return nil, err
				}
			}
		}
		for _, p := range g.Portals {
			for _, f := range p.Receivers {
				if err := mark(g.FilterNode[f]); err != nil {
					return nil, err
				}
			}
		}
		for _, c := range cs {
			if err := mark(c.sender); err != nil {
				return nil, err
			}
			if err := mark(c.receiver); err != nil {
				return nil, err
			}
		}
	}
	return sw, nil
}

// runCycles drives the current segment from the engine's cycle position to
// its end (segIters + maxStage cycles) in checkpointed epochs.
func (me *MappedEngine) runCycles() error {
	sw := me.swp
	if sw.segIters <= 0 {
		return nil
	}
	return me.driveTo(sw.segIters + sw.maxStage())
}

// swpStep is one slot in a worker's per-cycle firing order: a singleton
// node, or a whole stage cluster fired through the data-driven loop.
type swpStep struct {
	ctxs    []*mnodeCtx
	stage   int64 // first gated cycle (level * batch)
	cluster bool
}

// swpIn is one cross-worker in-edge with its producer's flush schedule.
type swpIn struct {
	e        *ir.Edge
	ch       chan []float64
	q        *SliceQueue
	srcStage int64
}

// runWorkerSWP drives one worker through cycles macro-cycles of the
// current epoch: per cycle, fire each gated step once, flush staged
// cross-worker output at batch boundaries, then receive every producer
// flush scheduled for this cycle index.
func (me *MappedEngine) runWorkerSWP(w, lane, cycles int) error {
	sw := me.swp
	K := sw.batch
	var steps []*swpStep
	var ctxs []*mnodeCtx
	byCluster := map[int]*swpStep{}
	for _, n := range me.order[w] {
		c := me.prepareNode(n)
		ctxs = append(ctxs, c)
		stage := int64(sw.levels[n.ID]) * K
		if ci := sw.clusterOf[n.ID]; ci >= 0 || sw.msgNode[n.ID] {
			key := ci
			if ci < 0 {
				key = -1 - n.ID // singleton messaging endpoint
			}
			st := byCluster[key]
			if st == nil {
				st = &swpStep{stage: stage, cluster: true}
				byCluster[key] = st
				steps = append(steps, st)
			}
			st.ctxs = append(st.ctxs, c) // me.order is topological, so ctxs stay ordered
			continue
		}
		steps = append(steps, &swpStep{ctxs: []*mnodeCtx{c}, stage: stage})
	}
	var compact []*SliceQueue
	for _, e := range me.G.Edges {
		if me.Assign[e.Src.ID] == w && me.Assign[e.Dst.ID] == w {
			compact = append(compact, me.queues[e.ID])
		}
	}
	var ins []swpIn
	for _, e := range me.G.Edges {
		if me.chans[e.ID] != nil && me.Assign[e.Dst.ID] == w {
			ins = append(ins, swpIn{e: e, ch: me.chans[e.ID], q: me.queues[e.ID],
				srcStage: int64(sw.levels[e.Src.ID]) * K})
		}
	}

	var cur *mnodeCtx // the node currently firing, for fault attribution
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if wc, ok := r.(*workerCrash); ok {
					err = wc
					return
				}
				name, fired := fmt.Sprintf("worker %d", w), int64(0)
				if cur != nil {
					name, fired = cur.rt.node.Name, cur.rt.fired
				}
				err = asExecError(name, fired, r)
			}
		}()
		for it := 0; it < cycles; it++ {
			t := me.iter + int64(it)
			if me.sup != nil {
				if wf, ok := me.sup.takeWorker(w, t); ok {
					if err := me.workerFault(w, lane, t, wf, ctxs); err != nil {
						return err
					}
				}
			}
			var t0 time.Duration
			if me.rec != nil {
				t0 = me.rec.Stamp()
			}
			for _, sp := range steps {
				fi := t - sp.stage + 1 // 1-based firing count once gated
				if fi < 1 || fi > sw.segIters {
					continue
				}
				if sp.cluster {
					if err := me.swpClusterStep(sp, fi, &cur); err != nil {
						return err
					}
				} else {
					cur = sp.ctxs[0]
					if err := me.swpFireStep(sp.ctxs[0]); err != nil {
						return err
					}
				}
				cur = nil
				if fi%K == 0 || fi == sw.segIters {
					for _, c := range sp.ctxs {
						if err := me.swpFlush(c); err != nil {
							return err
						}
					}
				}
			}
			for _, in := range ins {
				fi := t - in.srcStage + 1
				if fi < 1 || fi > sw.segIters {
					continue
				}
				if fi%K == 0 || fi == sw.segIters {
					batch, err := me.recvBatch(in.e.Dst, in.e, in.ch, in.q, me.statuses[in.e.Dst.ID])
					if err != nil {
						return err
					}
					in.q.Append(batch)
				}
			}
			for _, q := range compact {
				q.Compact()
			}
			if me.rec != nil {
				end := me.rec.Stamp()
				me.rec.Slice(lane, fmt.Sprintf("worker %d", w), "cycle", t0, end)
			}
		}
		return nil
	}()
	for _, c := range ctxs {
		me.statuses[c.rt.node.ID].set(stDone, "", 0, -1)
	}
	return err
}

// swpFireStep fires a gated singleton node's one logical iteration (reps
// firings) of this cycle.
func (me *MappedEngine) swpFireStep(c *mnodeCtx) error {
	st := me.statuses[c.rt.node.ID]
	for r := 0; r < c.reps; r++ {
		if err := me.fireTimed(c, st); err != nil {
			return err
		}
		if c.pst != nil {
			c.pst.AddFiring()
		}
		c.rt.fired++
		atomic.AddInt64(&me.progress, 1)
	}
	return nil
}

// swpClusterStep advances every member of a stage cluster to its firing
// target for this cycle through the sequential engine's data-driven
// discipline: topological passes firing whatever has input and is allowed
// by the messaging constraints, delivering due messages around each
// firing, until all members reach target or no member can move.
func (me *MappedEngine) swpClusterStep(sp *swpStep, fi int64, cur **mnodeCtx) error {
	sw := me.swp
	for {
		progressed, allDone := false, true
		for _, c := range sp.ctxs {
			n := c.rt.node
			target := me.initFired[n.ID] + (sw.base+fi)*int64(c.reps)
			st := me.statuses[n.ID]
			for c.rt.fired < target {
				if !me.swpCanFire(c) {
					break
				}
				ok, err := me.swpConstraintsAllow(n)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				*cur = c
				if err := me.swpClusterFire(c, st); err != nil {
					return err
				}
				progressed = true
			}
			if c.rt.fired < target {
				allDone = false
			}
		}
		if allDone {
			return nil
		}
		if !progressed {
			return fmt.Errorf("messaging constraints are unsatisfiable: no progress possible during steady-state")
		}
	}
}

// swpClusterFire is one cluster-member firing with message delivery on the
// sequential engine's timing: best-effort/downstream messages immediately
// before, upstream immediately after.
func (me *MappedEngine) swpClusterFire(c *mnodeCtx, st *nodeStatus) error {
	n := c.rt.node
	if err := me.swpDeliverDue(n, true); err != nil {
		return err
	}
	if err := me.fireTimed(c, st); err != nil {
		return err
	}
	if c.pst != nil {
		c.pst.AddFiring()
	}
	c.rt.fired++
	if c.partial != nil {
		*c.partial = 0
	}
	atomic.AddInt64(&me.progress, 1)
	return me.swpDeliverDue(n, false)
}

// swpCanFire checks input availability for one firing (the sequential
// engine's canFire over the worker-local queues).
func (me *MappedEngine) swpCanFire(c *mnodeCtx) bool {
	n := c.rt.node
	for p, e := range n.In {
		if e == nil {
			continue
		}
		if c.in[p].Len() < n.PeekPort(p) {
			return false
		}
	}
	return true
}

// swpFlush ships a node's staged cross-worker output as one batch per
// edge. Called at batch boundaries and at the node's last gated cycle, so
// the consumer's matching receive schedule drains every batch.
func (me *MappedEngine) swpFlush(c *mnodeCtx) error {
	n := c.rt.node
	st := me.statuses[n.ID]
	for p, e := range n.Out {
		if e == nil || c.localOut[p] {
			continue
		}
		q := c.out[p]
		batch := q.Take(q.Len())
		if err := me.sendBatch(e, me.chans[e.ID], batch, st); err != nil {
			return err
		}
	}
	return nil
}

// swpProgress mirrors the sequential engine's progress counter from firing
// counts: pushed items on the out tape (initial delay items included, as
// channel construction pushes them) or popped items for sinks, plus the
// mid-firing movement recorded by partialTape.
func (me *MappedEngine) swpProgress(n *ir.Node) int64 {
	rt := me.nodes[n.ID]
	var partial int64
	if me.swp.partial != nil {
		partial = me.swp.partial[n.ID]
	}
	if e := n.OutEdge(); e != nil {
		return int64(len(e.Initial)) + rt.fired*int64(n.TotalPush()) + partial
	}
	if n.InEdge() != nil {
		return rt.fired*int64(n.TotalPop()) + partial
	}
	return 0
}

// swpMiTapes and swpMaTapes are the engine's miTapes/maTapes over the
// pipelined calc.
func (me *MappedEngine) swpMiTapes(a, b *ir.Edge, bNode *ir.Node, x int64) (int64, error) {
	if a == b {
		if x <= 0 {
			return 0, nil
		}
		return x + sinkMargin(bNode), nil
	}
	return me.swp.calc.Mi(a, b, x)
}

func (me *MappedEngine) swpMaTapes(a, b *ir.Edge, bNode *ir.Node, x int64) (int64, error) {
	if a == b {
		pop := int64(bNode.TotalPop())
		m := sinkMargin(bNode)
		if x < m+pop || pop == 0 {
			return 0, nil
		}
		return (x - m) / pop * pop, nil
	}
	return me.swp.calc.Ma(a, b, x)
}

// swpConstraintsAllow is the sequential engine's constraintsAllow on the
// derived progress counters.
func (me *MappedEngine) swpConstraintsAllow(n *ir.Node) (bool, error) {
	for _, c := range me.swp.constraints {
		if c.receiver != n {
			continue
		}
		oB, err := progressTapeOf(c.receiver)
		if err != nil {
			return false, err
		}
		oA, err := progressTapeOf(c.sender)
		if err != nil {
			return false, err
		}
		pushA := progressRateOf(c.sender)
		nOB := me.swpProgress(c.receiver)
		nOA := me.swpProgress(c.sender)
		pushB := progressRateOf(n)
		if c.upstream {
			bound, err := me.swpMiTapes(oB, oA, c.sender, nOA+pushA*int64(c.latency))
			if err != nil {
				return false, err
			}
			if nOB+pushB > bound {
				return false, nil
			}
		} else {
			bound, err := me.swpMaTapes(oA, oB, c.receiver, nOA+pushA*int64(c.latency-1))
			if err != nil {
				return false, err
			}
			if nOB+pushB > bound {
				return false, nil
			}
		}
	}
	return true, nil
}

// swpDeliverDue delivers pending messages for node n on the sequential
// engine's timing rules.
func (me *MappedEngine) swpDeliverDue(n *ir.Node, before bool) error {
	sw := me.swp
	if sw.pending == nil {
		return nil
	}
	msgs := sw.pending[n.ID]
	if len(msgs) == 0 {
		return nil
	}
	var keep []*message
	nOB := me.swpProgress(n)
	pushB := progressRateOf(n)
	for _, m := range msgs {
		due := false
		switch {
		case m.bestEffort:
			due = before
		case m.upstream:
			due = !before && nOB >= m.target
		default:
			due = before && nOB+pushB > m.target
		}
		if due {
			if me.rec != nil {
				me.rec.Instant(n.ID, "deliver "+m.handler, "teleport", n.Name)
			}
			if err := me.swpInvokeHandler(n, m); err != nil {
				return err
			}
		} else {
			keep = append(keep, m)
		}
	}
	sw.pending[n.ID] = keep
	return nil
}

func (me *MappedEngine) swpInvokeHandler(n *ir.Node, m *message) error {
	k := n.Filter.Kernel
	h := k.Handlers[m.handler]
	if h == nil {
		return fmt.Errorf("%s: missing handler %q", n.Name, m.handler)
	}
	env := wfunc.NewEnv(h)
	env.State = me.nodes[n.ID].state
	env.SetArgs(m.args)
	env.Msg = &msender{me: me, node: n}
	return wfunc.Exec(h, env)
}

// msender adapts the pipelined mapped engine to wfunc.Messenger for one
// filter: the sequential sender's wavefront computation (messaging.go) on
// the derived progress counters. Cluster members never skew, so the
// windows — and with them delivery timing — match the sequential engine's
// exactly.
type msender struct {
	me   *MappedEngine
	node *ir.Node
}

// Send implements wfunc.Messenger; see the sequential sender.Send for the
// wavefront equations.
func (s *msender) Send(portal int, handler string, args []float64, minLat, maxLat int, bestEffort bool) error {
	me := s.me
	if portal < 0 || portal >= len(me.G.Portals) {
		return fmt.Errorf("filter %s sends to unknown portal %d", s.node.Name, portal)
	}
	p := me.G.Portals[portal]
	for _, f := range p.Receivers {
		r := me.G.FilterNode[f]
		if r == nil {
			return fmt.Errorf("portal %s receiver %s not in graph", p.Name, f.Kernel.Name)
		}
		if _, ok := f.Kernel.Handlers[handler]; !ok {
			return fmt.Errorf("portal %s receiver %s has no handler %q", p.Name, f.Kernel.Name, handler)
		}
		m := &message{handler: handler, args: args, bestEffort: bestEffort}
		if !bestEffort {
			oA, err := progressTapeOf(s.node)
			if err != nil {
				return err
			}
			oB, err := progressTapeOf(r)
			if err != nil {
				return err
			}
			sCount := me.swpProgress(s.node)
			pushA := progressRateOf(s.node)
			lam := int64(minLat)
			switch {
			case me.G.Downstream(r, s.node): // receiver upstream
				m.upstream = true
				target, err := me.swpMiTapes(oB, oA, s.node, sCount+pushA*lam)
				if err != nil {
					return err
				}
				if me.swpProgress(r) > target {
					return fmt.Errorf("message from %s to upstream %s with latency %d is undeliverable: receiver already past the wavefront (add a MAX_LATENCY constraint)", s.node.Name, r.Name, lam)
				}
				m.target = target
			case me.G.Downstream(s.node, r): // receiver downstream
				target, err := me.swpMaTapes(oA, oB, r, sCount+pushA*(lam-1))
				if err != nil {
					return err
				}
				if me.swpProgress(r) > target {
					return fmt.Errorf("message from %s to downstream %s with latency %d is undeliverable: receiver already past the wavefront", s.node.Name, r.Name, lam)
				}
				m.target = target
			default:
				return fmt.Errorf("message from %s to %s: parallel receivers are beyond this implementation (as in the paper)", s.node.Name, r.Name)
			}
		}
		me.swp.pending[r.ID] = append(me.swp.pending[r.ID], m)
	}
	return nil
}

// partialTape counts a sender's progress-tape movement inside the current
// firing: pushes on its out tape, or pops on its in tape for sinks. The
// counter resets at each firing (and each supervised retry attempt), so
// derived progress = fired*rate + partial tracks the sequential engine's
// live channel counters exactly, even mid-firing.
type partialTape struct {
	inner wfunc.Tape
	count *int64
	pops  bool
}

func (t *partialTape) Peek(i int) float64 { return t.inner.Peek(i) }

func (t *partialTape) Pop() float64 {
	v := t.inner.Pop()
	if t.pops {
		*t.count++
	}
	return v
}

func (t *partialTape) Push(v float64) {
	t.inner.Push(v)
	if !t.pops {
		*t.count++
	}
}

// Stages exposes the pipelined stage offsets (nil for lockstep plans);
// diagnostics and tests.
func (me *MappedEngine) Stages() []int {
	if me.swp == nil {
		return nil
	}
	out := make([]int, len(me.swp.levels))
	for i, lv := range me.swp.levels {
		out[i] = lv * int(me.swp.batch)
	}
	return out
}
