package streamit

import (
	"streamit/internal/core"
	"streamit/internal/exec"
	"streamit/internal/faults"
	"streamit/internal/fuse"
	"streamit/internal/ir"
	"streamit/internal/linear"
	"streamit/internal/machine"
	"streamit/internal/obs"
	"streamit/internal/partition"
)

// The facade re-exports the library's main types and entry points under a
// single name, so in-module users (cmd/, examples/, tests) can write
// streamit.Compile(...) without importing each subsystem.

// Core graph types.
type (
	// Program bundles a top-level stream with messaging declarations.
	Program = ir.Program
	// Stream is any hierarchical stream node.
	Stream = ir.Stream
	// Filter is the basic computation unit.
	Filter = ir.Filter
	// Pipeline composes children in sequence.
	Pipeline = ir.Pipeline
	// SplitJoin runs children in parallel.
	SplitJoin = ir.SplitJoin
	// FeedbackLoop creates a cycle with delay.
	FeedbackLoop = ir.FeedbackLoop
	// Portal is a teleport-messaging broadcast target.
	Portal = ir.Portal

	// Options configure compilation.
	Options = core.Options
	// Compiled is a verified, scheduled program.
	Compiled = core.Compiled
	// Engine executes a compiled program sequentially.
	Engine = exec.Engine
	// RunOptions select per-run execution choices (work-function backend).
	RunOptions = core.RunOptions
	// Backend names a work-function execution backend.
	Backend = exec.Backend
	// LinearOptions configure the linear optimizer.
	LinearOptions = linear.Options
	// MachineConfig describes the simulated multicore.
	MachineConfig = machine.Config
	// Strategy names a parallelization strategy.
	Strategy = partition.Strategy

	// FaultPlan schedules deterministic filter-level fault injection.
	FaultPlan = faults.Plan
	// RecoveryPolicies map filters to on-error recovery actions.
	RecoveryPolicies = faults.Policies
	// ExecError is the structured runtime error (filter, operation,
	// firing) raised by all three engines.
	ExecError = exec.ExecError
	// DeadlockError is the watchdog's no-progress report with the traced
	// wait-cycle.
	DeadlockError = exec.DeadlockError
	// MachineFaultPlan schedules tile and link failures in the simulator.
	MachineFaultPlan = machine.FaultPlan

	// Profiler holds per-filter runtime counters (enable with
	// RunOptions.Profile, read with the engine's Profile method).
	Profiler = obs.Profiler
	// FilterProfile is one node's profiler snapshot.
	FilterProfile = obs.FilterProfile
	// TraceRecorder collects Chrome trace_event records from a run
	// (attach via RunOptions.TracePath or exec.Options.Trace).
	TraceRecorder = obs.Recorder
	// BenchSnapshot is the BENCH_<app>.json metrics schema written by
	// streamit-bench.
	BenchSnapshot = obs.BenchSnapshot
)

// Constructors and helpers.
var (
	// Pipe builds a pipeline from children.
	Pipe = ir.Pipe
	// SJ builds a split-join.
	SJ = ir.SJ
	// RoundRobin builds a (weighted) round-robin splitter/joiner spec.
	RoundRobin = ir.RoundRobin
	// Duplicate builds a duplicating-splitter spec.
	Duplicate = ir.Duplicate
	// Identity returns an identity filter of the given type.
	Identity = ir.Identity

	// Compile verifies and schedules a program.
	Compile = core.Compile
	// CompileSource parses, elaborates, and compiles a .str program.
	CompileSource = core.CompileSource

	// DefaultMachine is the 16-tile configuration of the evaluation.
	DefaultMachine = machine.DefaultConfig

	// FuseFilters collapses two pipelined filters into one (see
	// internal/fuse for the stateless-producer requirement).
	FuseFilters = fuse.Pipeline

	// CompileDynamic builds the demand-driven engine for dynamic-rate
	// programs.
	CompileDynamic = core.CompileDynamic

	// ParseBackend parses a -backend style name ("vm", "interp").
	ParseBackend = core.ParseBackend

	// ParseFaultPlan parses a "kind:filter@firing;..." injection spec.
	ParseFaultPlan = faults.ParsePlan
	// ParseRecoveryPolicies parses a "filter=policy,..." recovery spec.
	ParseRecoveryPolicies = faults.ParsePolicies
	// SimulateFaults runs the machine simulator under a tile/link fault
	// plan.
	SimulateFaults = machine.SimulateFaults

	// NewTraceRecorder starts a trace recorder (epoch = now).
	NewTraceRecorder = obs.NewRecorder
	// ValidateBench checks a BENCH_<app>.json snapshot against the schema.
	ValidateBench = obs.ValidateBench
)

// Work-function execution backends.
const (
	// BackendVM runs work functions on the bytecode VM (the default).
	BackendVM = exec.BackendVM
	// BackendInterp runs work functions on the tree-walking interpreter.
	BackendInterp = exec.BackendInterp
)

// Parallelization strategies from the paper's evaluation.
const (
	Sequential      = partition.StratSequential
	TaskParallel    = partition.StratTask
	FineGrainedData = partition.StratFineData
	TaskData        = partition.StratCoarseData
	TaskSWP         = partition.StratSWP
	TaskDataSWP     = partition.StratCombined
	SpaceMultiplex  = partition.StratSpace
)
